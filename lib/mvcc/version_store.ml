open Snapdiff_storage
module Metrics = Snapdiff_obs.Metrics
module Clock = Snapdiff_txn.Clock

let m_versions_live = Metrics.gauge Metrics.global "mvcc.versions_live"
let m_copy_bytes = Metrics.counter Metrics.global "mvcc.copy_bytes"
let m_pages_copied = Metrics.counter Metrics.global "mvcc.pages_copied"
let m_read_indirections = Metrics.counter Metrics.global "mvcc.read_indirections"
let m_commits = Metrics.counter Metrics.global "mvcc.commits"
let m_reclaimed = Metrics.counter Metrics.global "mvcc.versions_reclaimed"
let m_zombie_reclaimed = Metrics.counter Metrics.global "mvcc.zombies_reclaimed"
let m_copyouts = Metrics.counter Metrics.global "mvcc.zigzag_copyouts"
let m_pins = Metrics.counter Metrics.global "mvcc.pins"

exception Epoch_not_retained of { requested : int; live_lo : int; live_hi : int }

let () =
  Printexc.register_printer (function
    | Epoch_not_retained { requested; live_lo; live_hi } ->
      Some
        (Printf.sprintf "Epoch_not_retained(epoch %d; retained epochs %d..%d)" requested
           live_lo live_hi)
    | _ -> None)

type strategy = Naive | Copy_on_update | Zigzag

let strategy_name = function
  | Naive -> "naive"
  | Copy_on_update -> "copy-on-update"
  | Zigzag -> "zigzag"

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "naive" -> Some Naive
  | "cou" | "copy-on-update" | "copy_on_update" -> Some Copy_on_update
  | "zigzag" -> Some Zigzag
  | _ -> None

type page = (Addr.t * Tuple.t) array

type live = {
  live_page : int -> page option;
  live_pids : unit -> int list;
  live_get : Addr.t -> Tuple.t option;
  live_count : unit -> int;
}

(* One frozen view per strategy:

   - [Frozen_naive]: a complete private page table (absent pid = empty).
   - [Frozen_cou]: overrides laid over the live table.  Invariant: a pid
     with no override is untouched since the version froze, so the live
     page *is* the version's page (the one read indirection).
   - [Frozen_zz]: a snapshot of the current-slot bitmap plus copy-out
     overrides; pids never dirtied since store creation have no slot pair
     and read through to live. *)
type view =
  | Live
  | Frozen_naive of (int, page) Hashtbl.t
  | Frozen_cou of (int, page option) Hashtbl.t
  | Frozen_zz of zz_view

and zz_view = {
  zv_bits : Bytes.t;  (* current-slot bit per pid at freeze; beyond length = 0 *)
  zv_over : (int, page option) Hashtbl.t;  (* copy-outs *)
}

type version = {
  mutable v_epoch : int;
  mutable v_snaptime : Clock.ts;
  mutable v_pins : int;
  mutable v_view : view;
  mutable v_dead : bool;  (* evicted from the ring; freed when pins drain *)
}

type t = {
  strat : strategy;
  keep : int;
  span : int;
  live : live;
  lock : Mutex.t;
  mutable ring : version list;  (* newest first; head is the live image *)
  mutable zombies : version list;
  (* Zigzag shared state: two page slots per ever-dirtied pid, plus the
     bit saying which slot the *next* freeze will reference. *)
  zz_slots : (int, page option array) Hashtbl.t;
  mutable zz_cur : Bytes.t;
  (* In-flight commit bookkeeping. *)
  mutable committing : bool;
  mutable froze_head : bool;  (* this commit took the freeze (slow) path *)
  touched : (int, unit) Hashtbl.t;  (* pids captured this commit *)
  (* Cached "mutations need interception" flag: one unsynchronized read on
     the write path keeps the inert default at zero overhead. *)
  mutable is_active : bool;
  (* The retention horizon's veto: [guard ~epoch ~snaptime] is false when
     some live lease or the retention policy still needs that version, in
     which case eviction keeps it in the ring instead of freeing or
     zombifying it.  Consulted by ring trimming and {!vacuum}; the default
     (always reclaimable) is the pre-lifecycle refcount-only behaviour. *)
  mutable guard : epoch:int -> snaptime:Clock.ts -> bool;
}

type txn = { tx_store : t; tx_version : version; mutable tx_pinned : bool }

(* ------------------------------------------------------------------ *)
(* Bit vector helpers (grow-on-demand; reads beyond length are 0).     *)

let bit_get b i =
  let byte = i lsr 3 in
  if byte >= Bytes.length b then 0
  else (Char.code (Bytes.unsafe_get b byte) lsr (i land 7)) land 1

let ensure_bits t i =
  let byte = i lsr 3 in
  if byte >= Bytes.length t.zz_cur then begin
    let b = Bytes.make (max (byte + 1) (2 * Bytes.length t.zz_cur + 8)) '\000' in
    Bytes.blit t.zz_cur 0 b 0 (Bytes.length t.zz_cur);
    t.zz_cur <- b
  end

let bit_flip t i =
  ensure_bits t i;
  let byte = i lsr 3 in
  let c = Char.code (Bytes.get t.zz_cur byte) in
  Bytes.set t.zz_cur byte (Char.chr (c lxor (1 lsl (i land 7))))

(* ------------------------------------------------------------------ *)

let create ?(strategy = Naive) ?(retain = 1) ?(page_span = 64) ~live () =
  if page_span < 1 then invalid_arg "Version_store.create: page_span < 1";
  let head =
    { v_epoch = -1; v_snaptime = Clock.never; v_pins = 0; v_view = Live; v_dead = false }
  in
  Metrics.shift m_versions_live 1.0;
  {
    strat = strategy;
    keep = max 1 retain;
    span = page_span;
    live;
    lock = Mutex.create ();
    ring = [ head ];
    zombies = [];
    zz_slots = Hashtbl.create 16;
    zz_cur = Bytes.create 0;
    committing = false;
    froze_head = false;
    touched = Hashtbl.create 16;
    is_active = false;
    guard = (fun ~epoch:_ ~snaptime:_ -> true);
  }

let set_reclaim_guard t g = t.guard <- g

let strategy t = t.strat
let retain t = t.keep
let page_span t = t.span
let active t = t.is_active

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Recompute the interception flag; call with the lock held. *)
let refresh_active t =
  t.is_active <-
    (match t.ring with
    | [ { v_view = Live; v_pins = 0; _ } ] -> t.zombies <> []
    | _ -> true)

let page_bytes (p : page option) =
  match p with
  | None -> 0
  | Some p -> Array.fold_left (fun acc (_, tup) -> acc + 8 + Tuple.encoded_size tup) 0 p

let note_copy p =
  Metrics.incr m_pages_copied;
  Metrics.add m_copy_bytes (page_bytes p)

let frozen_versions t =
  List.filter (fun v -> v.v_view <> Live) t.ring @ t.zombies

(* ------------------------------------------------------------------ *)
(* Capture: strategy-specific pre-image bookkeeping.  All run with the
   lock held, *before* the host mutates the page in question, at most
   once per pid per commit (raw writes re-run, which is idempotent). *)

let capture_cou t pid =
  let pre = lazy (t.live.live_page pid) in
  List.iter
    (fun v ->
      match v.v_view with
      | Frozen_cou over when not (Hashtbl.mem over pid) ->
        let p = Lazy.force pre in
        note_copy p;
        Hashtbl.replace over pid p
      | _ -> ())
    (frozen_versions t)

(* Zigzag: slot [cur pid] already holds the value every version whose bit
   points there needs (the post-image written when the bit last flipped),
   and the pre-image of the current dirtying *is* that value, so touching
   an already-slotted pid costs nothing here.  First-ever dirty of a pid
   materializes both slots with the pre-image so every frozen version
   (whatever its bit) stops reading through to live before live changes. *)
let capture_zz t pid =
  if not (Hashtbl.mem t.zz_slots pid) then begin
    let pre = t.live.live_page pid in
    note_copy pre;
    Hashtbl.replace t.zz_slots pid [| pre; pre |]
  end

(* A raw (non-commit) write under retained zigzag versions demotes the pid
   to read-through form: every frozen version takes a private copy of the
   page image it was reading (its slot, or the live page when the pid was
   never slotted), then the slot pair is dropped — future freezes read the
   raw-mutated page through live again.  The slot invariant — slot[cur]
   holds the pid's current live image — only survives mutations the store
   intercepts, and raw writes have no post-image hook to re-establish it. *)
let demote_zz t pid =
  let slots = Hashtbl.find_opt t.zz_slots pid in
  let pre = lazy (t.live.live_page pid) in
  List.iter
    (fun v ->
      match v.v_view with
      | Frozen_zz zv when not (Hashtbl.mem zv.zv_over pid) ->
        let p =
          match slots with
          | Some slots -> slots.(bit_get zv.zv_bits pid)
          | None -> Lazy.force pre
        in
        note_copy p;
        Metrics.incr m_copyouts;
        Hashtbl.replace zv.zv_over pid p
      | _ -> ())
    (frozen_versions t);
  Hashtbl.remove t.zz_slots pid

let capture_pid t pid =
  if t.committing then begin
    if not (Hashtbl.mem t.touched pid) then begin
      Hashtbl.replace t.touched pid ();
      match t.strat with
      | Naive -> ()  (* the freeze already cloned everything *)
      | Copy_on_update -> capture_cou t pid
      | Zigzag -> capture_zz t pid
    end
  end
  else
    (* Legacy raw write: frozen versions must stop depending on live for
       this pid before it changes under them. *)
    match t.strat with
    | Naive -> ()
    | Copy_on_update -> capture_cou t pid
    | Zigzag -> demote_zz t pid

let write t target mutate =
  if not t.is_active then mutate ()
  else
    locked t (fun () ->
        (match target with
        | `Addr addr -> capture_pid t (addr / t.span)
        | `All -> List.iter (capture_pid t) (t.live.live_pids ()));
        mutate ())

(* ------------------------------------------------------------------ *)
(* Commit protocol. *)

let freeze_head t head =
  (* While no frozen version is retained, writes bypass the store, so the
     zigzag slot pairs can be stale (slot[cur] no longer the live image).
     Nothing references them in that state — reset and rebuild from the
     coming commit's pre-images. *)
  if t.strat = Zigzag && frozen_versions t = [] then Hashtbl.reset t.zz_slots;
  let view =
    match t.strat with
    | Naive ->
      let pages = Hashtbl.create 64 in
      List.iter
        (fun pid ->
          match t.live.live_page pid with
          | Some p ->
            note_copy (Some p);
            Hashtbl.replace pages pid p
          | None -> ())
        (t.live.live_pids ());
      Frozen_naive pages
    | Copy_on_update -> Frozen_cou (Hashtbl.create 16)
    | Zigzag ->
      Frozen_zz { zv_bits = Bytes.copy t.zz_cur; zv_over = Hashtbl.create 4 }
  in
  head.v_view <- view

let begin_commit t =
  locked t (fun () ->
      if t.committing then invalid_arg "Version_store.begin_commit: already committing";
      t.committing <- true;
      Hashtbl.reset t.touched;
      let head = List.hd t.ring in
      (* Inert fast path: nothing retained, nobody watching — the commit
         mutates the live image in place, exactly the un-versioned table. *)
      if t.keep = 1 && head.v_pins = 0 && t.zombies = [] then t.froze_head <- false
      else begin
        t.froze_head <- true;
        freeze_head t head;
        refresh_active t
      end)

(* Publish side of zigzag: flip each dirty pid's bit and write the
   post-image into the newly current slot (the slot the *next* freeze's
   bitmap will reference).  Retained versions still pointing at that slot
   take a private copy first. *)
let zz_publish t =
  Hashtbl.iter
    (fun pid () ->
      match Hashtbl.find_opt t.zz_slots pid with
      | None -> ()
      | Some slots ->
        let o = 1 - bit_get t.zz_cur pid in
        List.iter
          (fun v ->
            match v.v_view with
            | Frozen_zz zv
              when bit_get zv.zv_bits pid = o && not (Hashtbl.mem zv.zv_over pid) ->
              let p = slots.(o) in
              note_copy p;
              Metrics.incr m_copyouts;
              Hashtbl.replace zv.zv_over pid p
            | _ -> ())
          (frozen_versions t);
        let post = t.live.live_page pid in
        note_copy post;
        slots.(o) <- post;
        bit_flip t pid)
    t.touched

let free_version v =
  (* Drop the bulk structures eagerly; the record itself is small. *)
  (match v.v_view with
  | Live -> ()
  | Frozen_naive pages -> Hashtbl.reset pages
  | Frozen_cou over -> Hashtbl.reset over
  | Frozen_zz zv -> Hashtbl.reset zv.zv_over);
  v.v_view <- Frozen_cou (Hashtbl.create 1);
  Metrics.shift m_versions_live (-1.0);
  Metrics.incr m_reclaimed

let end_commit t ~epoch ~snaptime =
  locked t (fun () ->
      if not t.committing then invalid_arg "Version_store.end_commit: no commit in flight";
      t.committing <- false;
      Metrics.incr m_commits;
      if not t.froze_head then begin
        (* Fast path: the head is still the live image; relabel it. *)
        let head = List.hd t.ring in
        head.v_epoch <- epoch;
        head.v_snaptime <- snaptime
      end
      else begin
        if t.strat = Zigzag then zz_publish t;
        let head =
          { v_epoch = epoch; v_snaptime = snaptime; v_pins = 0; v_view = Live; v_dead = false }
        in
        Metrics.shift m_versions_live 1.0;
        let ring = head :: t.ring in
        let rec trim i = function
          | [] -> []
          | v :: rest when i >= t.keep ->
            if v.v_pins > 0 then begin
              (* Evicted but pinned: survives as a zombie until the pins
                 (and their leases) drain — never reclaimed while held. *)
              v.v_dead <- true;
              t.zombies <- v :: t.zombies;
              trim (i + 1) rest
            end
            else if not (t.guard ~epoch:v.v_epoch ~snaptime:v.v_snaptime) then
              (* The retention horizon (a lease, or the retention policy's
                 time window) still needs this unpinned epoch: it stays in
                 the ring — pinnable later, vacuumable once released. *)
              v :: trim (i + 1) rest
            else begin
              free_version v;
              trim (i + 1) rest
            end
          | v :: rest -> v :: trim (i + 1) rest
        in
        t.ring <- trim 0 ring
      end;
      Hashtbl.reset t.touched;
      refresh_active t)

(* ------------------------------------------------------------------ *)
(* Read transactions. *)

let pin ?epoch t =
  locked t (fun () ->
      let v =
        match epoch with
        | None -> Some (List.hd t.ring)
        | Some e -> List.find_opt (fun v -> v.v_epoch = e) t.ring
      in
      match v with
      | None -> None
      | Some v ->
        v.v_pins <- v.v_pins + 1;
        Metrics.incr m_pins;
        refresh_active t;
        Some { tx_store = t; tx_version = v; tx_pinned = true })

let release tx =
  if tx.tx_pinned then begin
    tx.tx_pinned <- false;
    let t = tx.tx_store in
    locked t (fun () ->
        let v = tx.tx_version in
        v.v_pins <- v.v_pins - 1;
        if v.v_dead && v.v_pins = 0 then begin
          t.zombies <- List.filter (fun z -> z != v) t.zombies;
          free_version v;
          Metrics.incr m_zombie_reclaimed
        end;
        refresh_active t)
  end

(* Oldest/newest retained epoch; lock held.  The ring is newest first and
   never empty (the live head), so the range is its two ends. *)
let live_range_locked t =
  let hi = (List.hd t.ring).v_epoch in
  let rec last = function [ v ] -> v.v_epoch | _ :: tl -> last tl | [] -> hi in
  (last t.ring, hi)

let live_range t = locked t (fun () -> live_range_locked t)

let pin_exn ?epoch t =
  match pin ?epoch t with
  | Some tx -> tx
  | None ->
    let live_lo, live_hi = live_range t in
    let requested = Option.value epoch ~default:live_hi in
    raise (Epoch_not_retained { requested; live_lo; live_hi })

let txn_epoch tx = tx.tx_version.v_epoch
let txn_snaptime tx = tx.tx_version.v_snaptime
let txn_pinned tx = tx.tx_pinned

let check_pinned tx op = if not tx.tx_pinned then invalid_arg ("Version_store." ^ op ^ ": released txn")

(* Resolve the pinned version's image of one pid; lock held. *)
let resolve_page t v pid : page option =
  match v.v_view with
  | Live -> t.live.live_page pid
  | Frozen_naive pages -> Hashtbl.find_opt pages pid
  | Frozen_cou over -> (
    match Hashtbl.find_opt over pid with
    | Some p -> p
    | None ->
      Metrics.incr m_read_indirections;
      t.live.live_page pid)
  | Frozen_zz zv -> (
    match Hashtbl.find_opt zv.zv_over pid with
    | Some p -> p
    | None -> (
      match Hashtbl.find_opt t.zz_slots pid with
      | Some slots ->
        Metrics.incr m_read_indirections;
        slots.(bit_get zv.zv_bits pid)
      | None ->
        Metrics.incr m_read_indirections;
        t.live.live_page pid))

(* The pids that may be non-empty at the pinned version; lock held. *)
let candidate_pids t v =
  let add set pid = if not (Hashtbl.mem set pid) then Hashtbl.replace set pid () in
  match v.v_view with
  | Live -> t.live.live_pids ()
  | Frozen_naive pages ->
    List.sort compare (Hashtbl.fold (fun pid _ acc -> pid :: acc) pages [])
  | Frozen_cou over ->
    let set = Hashtbl.create 64 in
    List.iter (add set) (t.live.live_pids ());
    Hashtbl.iter (fun pid _ -> add set pid) over;
    List.sort compare (Hashtbl.fold (fun pid () acc -> pid :: acc) set [])
  | Frozen_zz zv ->
    let set = Hashtbl.create 64 in
    List.iter (add set) (t.live.live_pids ());
    Hashtbl.iter (fun pid _ -> add set pid) t.zz_slots;
    Hashtbl.iter (fun pid _ -> add set pid) zv.zv_over;
    List.sort compare (Hashtbl.fold (fun pid () acc -> pid :: acc) set [])

let find_in_page (p : page) addr =
  (* Binary search; pages are sorted by address. *)
  let lo = ref 0 and hi = ref (Array.length p - 1) and found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let a, tup = p.(mid) in
    let c = Addr.compare a addr in
    if c = 0 then begin
      found := Some tup;
      lo := !hi + 1
    end
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let get tx addr =
  check_pinned tx "get";
  let t = tx.tx_store in
  locked t (fun () ->
      match tx.tx_version.v_view with
      | Live -> t.live.live_get addr
      | _ -> (
        match resolve_page t tx.tx_version (addr / t.span) with
        | None -> None
        | Some p -> find_in_page p addr))

let iter_pages tx f =
  (* Fetch the pid list and then each page under short lock windows; the
     per-page capture discipline (pre-images installed before any live
     mutation) keeps every fetch consistent with the pinned version no
     matter how a concurrent commit interleaves. *)
  let t = tx.tx_store in
  let pids = locked t (fun () -> candidate_pids t tx.tx_version) in
  List.iter
    (fun pid ->
      match locked t (fun () -> resolve_page t tx.tx_version pid) with
      | None -> ()
      | Some p -> f p)
    pids

let iter tx f =
  check_pinned tx "iter";
  iter_pages tx (fun p -> Array.iter (fun (a, tup) -> f a tup) p)

let fold tx ~init ~f =
  check_pinned tx "fold";
  let acc = ref init in
  iter_pages tx (fun p -> Array.iter (fun (a, tup) -> acc := f !acc a tup) p);
  !acc

let count tx =
  check_pinned tx "count";
  let t = tx.tx_store in
  match tx.tx_version.v_view with
  | Live -> locked t (fun () -> t.live.live_count ())
  | _ ->
    let n = ref 0 in
    iter_pages tx (fun p -> n := !n + Array.length p);
    !n

let exists_in_range tx ?lo ?hi ~f () =
  check_pinned tx "exists_in_range";
  let t = tx.tx_store in
  let in_range a =
    (match lo with None -> true | Some l -> Addr.compare a l >= 0)
    && match hi with None -> true | Some h -> Addr.compare a h <= 0
  in
  let pid_ok pid =
    let first = pid * t.span and last = (pid * t.span) + t.span - 1 in
    (match lo with None -> true | Some l -> last >= l)
    && match hi with None -> true | Some h -> first <= h
  in
  let exception Found in
  try
    let pids = locked t (fun () -> candidate_pids t tx.tx_version) in
    List.iter
      (fun pid ->
        if pid_ok pid then
          match locked t (fun () -> resolve_page t tx.tx_version pid) with
          | None -> ()
          | Some p ->
            Array.iter (fun (a, tup) -> if in_range a && f tup then raise Found) p)
      pids;
    false
  with Found -> true

(* ------------------------------------------------------------------ *)

type version_info = {
  vi_epoch : int;
  vi_snaptime : Clock.ts;
  vi_pins : int;
  vi_frozen : bool;
}

let versions t =
  locked t (fun () ->
      List.map
        (fun v ->
          {
            vi_epoch = v.v_epoch;
            vi_snaptime = v.v_snaptime;
            vi_pins = v.v_pins;
            vi_frozen = v.v_view <> Live;
          })
        t.ring)

let zombie_count t = locked t (fun () -> List.length t.zombies)

(* ------------------------------------------------------------------ *)
(* Vacuum: horizon-driven reclamation of retained versions. *)

type vacuum_stats = {
  vac_examined : int;  (* eviction candidates considered *)
  vac_reclaimed : int;  (* versions freed (or would be, on a dry run) *)
  vac_zombied : int;  (* pinned candidates parked on the zombie list *)
  vac_kept : int;  (* unpinned candidates the horizon guard protected *)
  vac_bytes : int;  (* encoded bytes the freed versions held *)
}

let version_bytes v =
  match v.v_view with
  | Live -> 0
  | Frozen_naive pages -> Hashtbl.fold (fun _ p acc -> acc + page_bytes (Some p)) pages 0
  | Frozen_cou over -> Hashtbl.fold (fun _ p acc -> acc + page_bytes p) over 0
  | Frozen_zz zv -> Hashtbl.fold (fun _ p acc -> acc + page_bytes p) zv.zv_over 0

let vacuum ?older_than ?(dry_run = false) t =
  locked t (fun () ->
      if t.committing then invalid_arg "Version_store.vacuum: commit in flight";
      let expired v =
        match older_than with Some ts -> v.v_snaptime < ts | None -> false
      in
      let stats =
        ref { vac_examined = 0; vac_reclaimed = 0; vac_zombied = 0; vac_kept = 0; vac_bytes = 0 }
      in
      let bump f = stats := f !stats in
      (* The live head (position 0) is never a candidate; beyond it a
         version goes when it has fallen past the retained count (ring
         overage the guard kept alive earlier) or is explicitly older
         than the cutoff, which overrides the count.  Pinned candidates
         are evicted to the zombie list — their readers keep a
         byte-identical image and the final release reclaims them — and
         unpinned ones are freed unless the horizon guard (a live lease,
         or the retention policy's time window) still needs them. *)
      let rec walk i = function
        | [] -> []
        | v :: rest when i = 0 || not (i >= t.keep || expired v) -> v :: walk (i + 1) rest
        | v :: rest ->
          bump (fun s -> { s with vac_examined = s.vac_examined + 1 });
          if v.v_pins > 0 then begin
            bump (fun s -> { s with vac_zombied = s.vac_zombied + 1 });
            if dry_run then v :: walk (i + 1) rest
            else begin
              v.v_dead <- true;
              t.zombies <- v :: t.zombies;
              walk (i + 1) rest
            end
          end
          else if not (t.guard ~epoch:v.v_epoch ~snaptime:v.v_snaptime) then begin
            bump (fun s -> { s with vac_kept = s.vac_kept + 1 });
            v :: walk (i + 1) rest
          end
          else begin
            bump (fun s ->
                { s with vac_reclaimed = s.vac_reclaimed + 1; vac_bytes = s.vac_bytes + version_bytes v });
            if dry_run then v :: walk (i + 1) rest
            else begin
              free_version v;
              walk (i + 1) rest
            end
          end
      in
      let ring' = walk 0 t.ring in
      if not dry_run then t.ring <- ring';
      refresh_active t;
      !stats)
