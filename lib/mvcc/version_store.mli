(** Multi-version snapshot store: the last K committed refresh epochs of
    one snapshot table, each an immutable consistent image, served to
    readers that never block on — and are never blocked by — a refresh
    commit.

    The paper's snapshot site exists to serve reads, but a framed-stream
    commit ({!Snapdiff_core.Snapshot_table.apply_framed}) mutates the one
    live image in place.  This store retrofits snapshot-isolation reads
    (Raad et al., {e On the Semantics of Snapshot Isolation}): every commit
    publishes an immutable version [(epoch, snaptime, contents view)] into
    a ring of the [retain] most recent epochs; a {!txn} pins one version
    and reads it for as long as it likes; a version leaves memory only
    when it has fallen off the ring {e and} its pin count is zero
    (refcount-gated reclamation — evicted-but-pinned versions park on a
    zombie list until released).

    {2 Materialization strategies}

    How the image of a superseded epoch is kept is pluggable, following
    {e A Comparative Study of Consistent Snapshot Algorithms for
    Main-Memory Database Systems}:

    - {b Naive} — the freezing epoch is cloned wholesale at commit:
      highest commit cost (O(table) copy per commit once anything is
      retained or pinned), zero read amplification.
    - {b Copy-on-update} — the commit installs only the epoch's dirty-page
      pre-images over the shared live base; a read chases at most one
      indirection (override miss -> live page).  Cheapest commit,
      read amplification proportional to the untouched fraction.
    - {b Zigzag} — two page slots per dirtied page plus a current-slot
      bitmap flipped per epoch: the commit writes the pre-image into the
      inactive slot and (at publish) the post-image into the newly
      flipped slot, so retained versions read their slot directly;
      pages referenced by both slots across > 2 retained epochs fall
      back to a per-version copy-out.

    All three maintain the identical logical image per epoch (pinned by a
    qcheck property in the test suite) and differ only in copy cost vs
    read amplification — measured by [bench mvcc].

    {2 Default-path neutrality}

    With [retain = 1], no pinned reader, and no zombie, the store is
    {e inert}: {!write} runs the mutation directly (one boolean check, no
    lock, no capture), and a commit just relabels the live head — the
    pre-existing in-place apply, byte-identical to the un-versioned
    table.  Capture engages only once a frozen version exists or a reader
    pins the head across a commit.

    {2 Concurrency}

    Version data is immutable once frozen; the ring, the pin counts and
    the copy-on-update/zigzag override tables are guarded by one mutex
    with O(page) critical sections.  Writers hold it per single mutation
    ({!write}), readers per page fetch — so a reader waits at most one
    entry-level mutation, never a whole commit, and a commit never waits
    for readers at all. *)

open Snapdiff_storage
open Snapdiff_txn

exception Epoch_not_retained of { requested : int; live_lo : int; live_hi : int }
(** A named epoch is not in the ring — never committed, or already
    reclaimed.  Carries the requested epoch and the currently retained
    range (oldest..newest; the head is epoch [-1] before the first
    commit).  Raised by {!pin_exn}; registered with a printer. *)

type strategy = Naive | Copy_on_update | Zigzag

val strategy_name : strategy -> string
(** ["naive"], ["copy-on-update"], ["zigzag"]. *)

val strategy_of_string : string -> strategy option
(** Accepts the names above plus the aliases ["cou"] and
    ["copy_on_update"]. *)

type page = (Addr.t * Tuple.t) array
(** One logical version page: the entries whose BaseAddr falls in the
    page's span, sorted ascending.  Immutable once captured. *)

(** How the store reads the host table's live image.  All callbacks are
    invoked with the store lock held, so they see a consistent point in
    the host's mutation stream. *)
type live = {
  live_page : int -> page option;  (** current image of a pid; [None] = empty *)
  live_pids : unit -> int list;  (** non-empty pids, ascending *)
  live_get : Addr.t -> Tuple.t option;
  live_count : unit -> int;
}

type t

type txn
(** A read transaction pinned to one version. *)

val create : ?strategy:strategy -> ?retain:int -> ?page_span:int -> live:live -> unit -> t
(** Defaults: [strategy = Naive], [retain = 1] (the inert default path),
    [page_span = 64] addresses per logical page.  [retain] counts the
    live head, so [retain = k] keeps the last [k] committed epochs
    readable; values below 1 clamp to 1. *)

val strategy : t -> strategy
val retain : t -> int
val page_span : t -> int

val active : t -> bool
(** Whether mutations currently need interception (a frozen version, a
    pinned head, or a zombie exists).  Exposed for tests. *)

val set_reclaim_guard : t -> (epoch:int -> snaptime:Clock.ts -> bool) -> unit
(** Install the retention horizon's veto: [guard ~epoch ~snaptime] must
    return [false] while some live lease or the retention policy still
    needs that version, in which case eviction (ring trimming at commit,
    {!vacuum}) keeps the version in the ring instead of freeing it.
    Pinned versions are never freed regardless (they park on the zombie
    list until released) — the guard extends that protection to unpinned
    state the {!Snapdiff_lifecycle.Horizon} knows is still wanted.  The
    default guard always allows reclamation (refcount-only, the
    pre-lifecycle behaviour).  Called with the store lock held; the guard
    must not re-enter the store. *)

(** {1 Host write protocol}

    The host table routes every mutation through {!write}, and brackets a
    framed-stream commit replay with {!begin_commit} / {!end_commit}.
    Mutations between the two are the committing epoch's delta; mutations
    outside any commit are legacy raw writes, which remain visible to the
    live head (the head {e is} the live image) while frozen versions stay
    sealed off from them. *)

val write : t -> [ `Addr of Addr.t | `All ] -> (unit -> 'a) -> 'a
(** [write t target mutate] captures the pre-image of the page(s) covering
    [target] (first touch per commit only) according to the strategy, then
    runs [mutate], all under the store lock — unless the store is inert,
    in which case [mutate] runs directly. *)

val begin_commit : t -> unit
(** Freeze the live head into an immutable version (unless the inert fast
    path applies).  Must be paired with {!end_commit}. *)

val end_commit : t -> epoch:int -> snaptime:Clock.ts -> unit
(** Publish the just-replayed state as the new live head version and
    evict beyond [retain]; evicted-but-pinned versions become zombies. *)

(** {1 Read transactions} *)

val pin : ?epoch:int -> t -> txn option
(** Pin the named retained epoch, or the latest version when [epoch] is
    omitted.  [None] if that epoch is not in the ring (never committed,
    or already evicted).  Before the first commit the head carries
    epoch [-1]. *)

val pin_exn : ?epoch:int -> t -> txn
(** {!pin}, but a miss raises {!Epoch_not_retained} with the requested
    epoch and the live range instead of returning [None] — the typed
    surface the SQL [AS OF] path reports cleanly. *)

val release : txn -> unit
(** Idempotent.  Dropping the last pin of a zombie reclaims it.  Reading
    through a released transaction raises [Invalid_argument]. *)

val txn_epoch : txn -> int
val txn_snaptime : txn -> Clock.ts

val txn_pinned : txn -> bool
(** False after {!release}. *)

val get : txn -> Addr.t -> Tuple.t option

val iter : txn -> (Addr.t -> Tuple.t -> unit) -> unit
(** BaseAddr-ascending, at the pinned version.  The callback runs outside
    the store lock and must not mutate the host table. *)

val fold : txn -> init:'a -> f:('a -> Addr.t -> Tuple.t -> 'a) -> 'a

val count : txn -> int

val exists_in_range :
  txn -> ?lo:Addr.t -> ?hi:Addr.t -> f:(Tuple.t -> bool) -> unit -> bool

(** {1 Introspection} *)

type version_info = {
  vi_epoch : int;
  vi_snaptime : Clock.ts;
  vi_pins : int;
  vi_frozen : bool;  (** false only for the live head *)
}

val versions : t -> version_info list
(** The ring, newest first. *)

val zombie_count : t -> int
(** Evicted versions kept alive only by open pins. *)

val live_range : t -> int * int
(** Oldest and newest retained epoch (the ring's two ends). *)

(** {1 Vacuum}

    Horizon-driven reclamation, the per-store half of
    [Manager.vacuum]. *)

type vacuum_stats = {
  vac_examined : int;  (** eviction candidates considered *)
  vac_reclaimed : int;  (** versions freed (or would be, on a dry run) *)
  vac_zombied : int;  (** pinned candidates parked on the zombie list *)
  vac_kept : int;  (** unpinned candidates the horizon guard protected *)
  vac_bytes : int;  (** encoded bytes the freed versions held *)
}

val vacuum : ?older_than:Clock.ts -> ?dry_run:bool -> t -> vacuum_stats
(** Evict retained versions the horizon no longer needs.  Candidates are
    frozen ring versions past the retained count, plus — when
    [older_than] is given — any non-head version whose snaptime is
    strictly below it (an explicit cutoff overrides the count).  The live
    head is never touched.  Pinned candidates move to the zombie list
    (their readers keep a byte-identical image; the final {!release}
    reclaims them); unpinned candidates are freed unless the reclaim
    guard vetoes.  [dry_run] (default false) reports what would happen
    without changing anything.  Raises [Invalid_argument] if called
    between {!begin_commit} and {!end_commit}. *)
