type gap_model =
  | Geometric
  | Fixed_gap

(* Negated range tests so NaN (which fails every comparison) is rejected
   along with out-of-range values. *)
let check ~n ~q =
  if n < 0 then invalid_arg "Model: n must be non-negative";
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Model: q must be in [0,1]"

let check_u u = if not (u >= 0.0 && u <= 1.0) then invalid_arg "Model: u must be in [0,1]"

let check_q q = if not (q >= 0.0 && q <= 1.0) then invalid_arg "Model: q must be in [0,1]"

let full_messages ~n ~q =
  check ~n ~q;
  q *. float_of_int n

let ideal_messages ~n ~q ~u =
  check ~n ~q;
  check_u u;
  u *. q *. float_of_int n

let transmit_probability ~model ~q ~u =
  check_q q;
  check_u u;
  if q <= 0.0 then 0.0
  else if u >= 1.0 then 1.0
  else
    match model with
    | Geometric ->
      (* Survival = E[(1-u)^(G+1)] with G ~ Geometric(q) counting the
         unqualified entries in the gap. *)
      let s = (1.0 -. u) *. q /. (1.0 -. ((1.0 -. q) *. (1.0 -. u))) in
      1.0 -. s
    | Fixed_gap -> 1.0 -. Float.pow (1.0 -. u) (1.0 /. q)

let differential_messages ?(model = Geometric) ?(include_tail = true) ~n ~q ~u () =
  check ~n ~q;
  check_u u;
  let entries = q *. float_of_int n *. transmit_probability ~model ~q ~u in
  if include_tail && n > 0 then entries +. 1.0 else entries

(* Page-decode cost of serving [subs] snapshots of one table: a page is
   touched (holds at least one updated entry) with probability
   [1 - (1-u)^epp]; a pruned solo scan decodes the touched pages, so
   [subs] solo scans decode [subs] times that, while one group scan
   decodes each touched page once no matter how many subscribers consume
   it.  (First refresh after a summary invalidation decodes everything;
   this models the steady state.) *)
let pages_touched ~pages ~entries_per_page ~u =
  if pages < 0 then invalid_arg "Model: pages must be non-negative";
  if entries_per_page < 0 then invalid_arg "Model: entries_per_page must be non-negative";
  check_u u;
  float_of_int pages
  *. (1.0 -. Float.pow (1.0 -. u) (float_of_int entries_per_page))

let solo_scan_pages ~pages ~entries_per_page ~u ~subs =
  if subs < 0 then invalid_arg "Model: subs must be non-negative";
  float_of_int subs *. pages_touched ~pages ~entries_per_page ~u

let group_scan_pages ~pages ~entries_per_page ~u ~subs =
  if subs < 0 then invalid_arg "Model: subs must be non-negative";
  if subs = 0 then 0.0 else pages_touched ~pages ~entries_per_page ~u

let observed_update_fraction ~mutations ~n =
  if mutations < 0 then invalid_arg "Model: mutations must be non-negative";
  if n < 0 then invalid_arg "Model: n must be non-negative";
  if n = 0 then 0.0 else Float.min 1.0 (float_of_int mutations /. float_of_int n)

let pct_of_table ~n x =
  if n = 0 then 0.0 else 100.0 *. x /. float_of_int n

let superfluous_fraction ~q ~u =
  check_u u;
  check_q q;
  let diff = q *. transmit_probability ~model:Geometric ~q ~u in
  let ideal = u *. q in
  if diff <= 0.0 then 0.0 else 1.0 -. (ideal /. diff)
