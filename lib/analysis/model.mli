(** Closed-form expected message counts — the "analysis" half of the
    paper's "both simulation and analysis show that the above hypothesis is
    true".

    Model assumptions (matching the Figure 8/9 experiment): a base table of
    [n] entries; a fraction [u] of {e distinct} entries is updated between
    refreshes, chosen uniformly; updates change payload fields only, so an
    entry's qualification is stable; the restriction qualifies a fraction
    [q] of entries, independently of position.

    Derivations:

    - {b Full} transmits every qualified entry: [q·n].
    - {b Ideal} transmits exactly the updated entries that qualify:
      [u·q·n].
    - {b Differential} transmits a qualified entry iff it or anything in
      the empty-address gap before it was modified.  With qualification
      independent per entry, the number of unqualified entries between two
      consecutive qualified ones is geometric: [P(G = g) = q·(1-q)^g].
      An entry survives untransmitted with probability
      [E[(1-u)^(G+1)] = (1-u)·q / (1 - (1-q)(1-u))], so

      {v E[messages] = q·n·(1 - q(1-u)/(1 - (1-q)(1-u))) (+ 1 tail) v}

      Sanity: at [q = 1] this is [u·n] (equals ideal — "when there is no
      restriction, the differential refresh algorithm performs as well as
      the ideal refresh"); at [u = 1] it is [q·n] (equals full).  The
      coarser fixed-gap approximation [q·n·(1-(1-u)^(1/q))] is provided
      for comparison. *)

type gap_model =
  | Geometric  (** exact under the independence assumption (default) *)
  | Fixed_gap  (** every qualified entry covers exactly 1/q addresses *)

val full_messages : n:int -> q:float -> float

val ideal_messages : n:int -> q:float -> u:float -> float

val differential_messages :
  ?model:gap_model -> ?include_tail:bool -> n:int -> q:float -> u:float -> unit -> float
(** [include_tail] (default true) adds the unconditional trailing delete
    message. *)

val pages_touched : pages:int -> entries_per_page:int -> u:float -> float
(** Expected pages holding at least one updated entry:
    [pages·(1 - (1-u)^epp)] — what one pruned differential scan decodes
    in steady state. *)

val solo_scan_pages : pages:int -> entries_per_page:int -> u:float -> subs:int -> float
(** Page decodes for [subs] snapshots refreshed by independent solo
    scans: [subs · pages_touched]. *)

val group_scan_pages : pages:int -> entries_per_page:int -> u:float -> subs:int -> float
(** Page decodes for the same [subs] snapshots served by one group scan:
    a touched page is decoded once regardless of how many subscribers
    consume it, so the cost is flat in [subs] — the amortization
    {!Snapdiff_core.Differential.refresh_group} exists to realize.
    (Assumes subscribers share SnapTime-comparable staleness; a straggler
    whose cache is cold forces extra decodes toward the solo bound.) *)

val transmit_probability : model:gap_model -> q:float -> u:float -> float
(** Probability that a given qualified entry is transmitted by a
    differential refresh — the per-entry factor inside
    {!differential_messages}.  Raises [Invalid_argument] unless [q] and
    [u] are both in [\[0,1\]] (the fleet scheduler feeds this observed
    churn estimates, which must be clamped first — see
    {!observed_update_fraction}). *)

val observed_update_fraction : mutations:int -> n:int -> float
(** Cost-model input from observed statistics: the distinct-update
    fraction estimated from a raw mutation count since the last refresh
    over a table of [n] live entries, clamped to [\[0,1\]] (repeated
    mutations of one entry make the raw ratio an overestimate; 0 when the
    table is empty). *)

val pct_of_table : n:int -> float -> float
(** Messages as a percentage of base-table size — the y-axis of Figures 8
    and 9. *)

val superfluous_fraction : q:float -> u:float -> float
(** Fraction of differential's transmissions the ideal algorithm would not
    have sent: [1 - ideal/differential] (0 when nothing is sent).  This is
    the "relative number of superfluous messages" the paper's analysis
    section discusses. *)
