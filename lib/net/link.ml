module Metrics = Snapdiff_obs.Metrics
module Trace = Snapdiff_obs.Trace

let m_frames = Metrics.counter Metrics.global "link.frames"
let m_logical = Metrics.counter Metrics.global "link.logical_messages"
let m_bytes = Metrics.counter Metrics.global "link.bytes"
let m_dropped = Metrics.counter Metrics.global "link.dropped"
let m_fault_drops = Metrics.counter Metrics.global "link.fault_drops"
let m_fault_corruptions = Metrics.counter Metrics.global "link.fault_corruptions"
let m_fault_outages = Metrics.counter Metrics.global "link.fault_outages"

exception Link_down of string

exception No_receiver of string

type stats = {
  messages : int;
  logical_messages : int;
  bytes : int;
  payload_bytes : int;
  dropped : int;
  injected_drops : int;
  injected_corruptions : int;
  injected_failures : int;
}

let zero_stats =
  {
    messages = 0;
    logical_messages = 0;
    bytes = 0;
    payload_bytes = 0;
    dropped = 0;
    injected_drops = 0;
    injected_corruptions = 0;
    injected_failures = 0;
  }

let add_stats a b =
  {
    messages = a.messages + b.messages;
    logical_messages = a.logical_messages + b.logical_messages;
    bytes = a.bytes + b.bytes;
    payload_bytes = a.payload_bytes + b.payload_bytes;
    dropped = a.dropped + b.dropped;
    injected_drops = a.injected_drops + b.injected_drops;
    injected_corruptions = a.injected_corruptions + b.injected_corruptions;
    injected_failures = a.injected_failures + b.injected_failures;
  }

let pp_stats ppf s =
  Format.fprintf ppf "%d msgs (%d logical), %d bytes (%d payload), %d dropped" s.messages
    s.logical_messages s.bytes s.payload_bytes s.dropped;
  if s.injected_drops + s.injected_corruptions + s.injected_failures > 0 then
    Format.fprintf ppf " [faults: %d lost, %d corrupted, %d outages]" s.injected_drops
      s.injected_corruptions s.injected_failures

module Rng = Snapdiff_util.Rng

type fault_plan = {
  drop_prob : float;
  corrupt_prob : float;
  fail_after : int option;
  partitions : (int * int) list;
}

type faults = {
  plan : fault_plan;
  frng : Rng.t;
  mutable attempts : int;  (* sends seen since the plan was armed *)
  mutable fail_pending : int option;  (* one-shot outage threshold *)
}

type t = {
  link_name : string;
  header_bytes : int;
  latency_us : float;
  bytes_per_sec : float;
  mutable receiver : (bytes -> unit) option;
  mutable up : bool;
  mutable stats : stats;
  mutable simulated_us : float;
  mutable faults : faults option;
}

let create ?(name = "link") ?(header_bytes = 32) ?(latency_us = 0.0)
    ?(bytes_per_sec = infinity) () =
  {
    link_name = name;
    header_bytes;
    latency_us;
    bytes_per_sec;
    receiver = None;
    up = true;
    stats = zero_stats;
    simulated_us = 0.0;
    faults = None;
  }

let simulated_time_us t = t.simulated_us

let advance_time t us = if us > 0.0 then t.simulated_us <- t.simulated_us +. us

let name t = t.link_name

let attach t f = t.receiver <- Some f

let detach t = t.receiver <- None

let is_up t = t.up

let set_up t up = t.up <- up

let stats t = t.stats

let reset_stats t = t.stats <- zero_stats

let inject_faults t ?(drop_prob = 0.0) ?(corrupt_prob = 0.0) ?fail_after
    ?(partitions = []) ~seed () =
  if drop_prob < 0.0 || drop_prob > 1.0 then invalid_arg "Link.inject_faults: drop_prob";
  if corrupt_prob < 0.0 || corrupt_prob > 1.0 then
    invalid_arg "Link.inject_faults: corrupt_prob";
  t.faults <-
    Some
      {
        plan = { drop_prob; corrupt_prob; fail_after; partitions };
        frng = Rng.create seed;
        attempts = 0;
        fail_pending = fail_after;
      }

let clear_faults t = t.faults <- None

let faults_active t = t.faults <> None

let count_drop t =
  t.stats <- { t.stats with dropped = t.stats.dropped + 1 };
  Metrics.incr m_dropped

(* Decide this send's fate under the armed fault plan.  Outages (one-shot
   fail-after and partition windows) surface to the sender as Link_down;
   loss and corruption are silent, which is exactly what the epoch/seq
   framing on the receiver side exists to detect. *)
let consult_faults t =
  match t.faults with
  | None -> `Deliver
  | Some f ->
    f.attempts <- f.attempts + 1;
    let in_partition =
      List.exists (fun (lo, hi) -> f.attempts >= lo && f.attempts <= hi) f.plan.partitions
    in
    let crashed =
      match f.fail_pending with
      | Some n when f.attempts > n ->
        f.fail_pending <- None;  (* transient: exactly one outage *)
        true
      | _ -> false
    in
    if in_partition || crashed then `Outage
    else if f.plan.drop_prob > 0.0 && Rng.bernoulli f.frng f.plan.drop_prob then `Lose
    else if f.plan.corrupt_prob > 0.0 && Rng.bernoulli f.frng f.plan.corrupt_prob then
      `Corrupt (Rng.int f.frng max_int)
    else `Deliver

let account t ~logical n =
  t.stats <-
    {
      t.stats with
      messages = t.stats.messages + 1;
      logical_messages = t.stats.logical_messages + logical;
      bytes = t.stats.bytes + t.header_bytes + n;
      payload_bytes = t.stats.payload_bytes + n;
    };
  Metrics.incr m_frames;
  Metrics.add m_logical logical;
  Metrics.add m_bytes (t.header_bytes + n);
  t.simulated_us <-
    t.simulated_us +. t.latency_us
    +. (1_000_000.0 *. float_of_int (t.header_bytes + n) /. t.bytes_per_sec)

let send t ?(logical = 1) payload =
  if not t.up then begin
    count_drop t;
    raise (Link_down t.link_name)
  end;
  match t.receiver with
  | None -> raise (No_receiver t.link_name)
  | Some f -> (
    match consult_faults t with
    | `Outage ->
      count_drop t;
      t.stats <- { t.stats with injected_failures = t.stats.injected_failures + 1 };
      Metrics.incr m_fault_outages;
      Trace.event "link.fault" ~attrs:[ ("link", t.link_name); ("kind", "outage") ];
      raise (Link_down t.link_name)
    | `Lose ->
      (* The message occupied the wire but never arrived. *)
      account t ~logical (Bytes.length payload);
      count_drop t;
      t.stats <- { t.stats with injected_drops = t.stats.injected_drops + 1 };
      Metrics.incr m_fault_drops;
      Trace.event "link.fault" ~attrs:[ ("link", t.link_name); ("kind", "drop") ]
    | `Corrupt salt ->
      account t ~logical (Bytes.length payload);
      t.stats <- { t.stats with injected_corruptions = t.stats.injected_corruptions + 1 };
      Metrics.incr m_fault_corruptions;
      Trace.event "link.fault" ~attrs:[ ("link", t.link_name); ("kind", "corrupt") ];
      let garbled = Bytes.copy payload in
      if Bytes.length garbled > 0 then begin
        let i = salt mod Bytes.length garbled in
        Bytes.set garbled i
          (Char.chr (Char.code (Bytes.get garbled i) lxor (1 + (salt lsr 8) mod 255)))
      end;
      f garbled
    | `Deliver ->
      account t ~logical (Bytes.length payload);
      f payload)

let try_send t ?logical payload =
  match send t ?logical payload with
  | () -> true
  | exception Link_down _ -> false
