(** Simulated communication links between database sites.

    The paper's evaluation metric is message traffic between the base-table
    site and (remote) snapshot sites, so the "network" here is an exact
    cost-accounting device: every {!send} counts one message and
    [header + payload] bytes, and delivers the payload synchronously to the
    receiver installed with {!attach}.

    Links can be taken down ({!set_up}) to exercise the failure behaviour
    the paper holds against ASAP propagation, and can be armed with a
    seeded fault plan ({!inject_faults}) that loses, corrupts, or outages
    messages mid-stream — the adversary the epoch-framed refresh transport
    is built to survive. *)

exception Link_down of string

exception No_receiver of string
(** Raised by {!send} when no receiver is attached: a wiring error, not a
    transient fault — carries the link name.  Unlike {!Link_down} it is
    not retryable; refresh surfaces it as a configuration failure. *)

type stats = {
  messages : int;  (** physical frames put on the wire *)
  logical_messages : int;
      (** refresh-protocol messages carried by those frames; equals
          [messages] unless senders batch (see {!Snapdiff_core.Refresh_msg.Batch}) *)
  bytes : int;  (** includes per-message header overhead *)
  payload_bytes : int;
  dropped : int;  (** sends that did not reach the receiver, any cause *)
  injected_drops : int;  (** fault plan: silently lost messages *)
  injected_corruptions : int;  (** fault plan: payload bytes garbled in flight *)
  injected_failures : int;  (** fault plan: outages surfaced as {!Link_down} *)
}

val zero_stats : stats

val add_stats : stats -> stats -> stats

val pp_stats : Format.formatter -> stats -> unit

type t

val create :
  ?name:string ->
  ?header_bytes:int ->
  ?latency_us:float ->
  ?bytes_per_sec:float ->
  unit ->
  t
(** [header_bytes] is the fixed per-message overhead (default 32, a
    plausible transport header).  [latency_us] (per message, default 0)
    and [bytes_per_sec] (default infinite) feed the simulated transfer
    clock: the evaluation metric is message count, but the simulated time
    makes "how long would this refresh take on a 1986 line" computable. *)

val simulated_time_us : t -> float
(** Accumulated transfer time of everything sent:
    [messages * latency + bytes / bandwidth], in microseconds. *)

val advance_time : t -> float -> unit
(** Add [us] microseconds of non-transfer time (e.g. retry backoff) to the
    simulated clock.  Negative values are ignored. *)

val name : t -> string

val attach : t -> (bytes -> unit) -> unit
(** Install the receiving end.  Replaces any previous receiver. *)

val detach : t -> unit
(** Remove the receiver; subsequent {!send}s raise {!No_receiver}. *)

val send : t -> ?logical:int -> bytes -> unit
(** Deliver synchronously.  Raises {!Link_down} (after counting the drop)
    if the link is down or an injected outage fires; raises {!No_receiver} if
    no receiver is attached.  Under an armed fault plan the message may
    also be silently lost or delivered corrupted — the sender cannot
    tell, which is the point.  [logical] (default 1) is the number of
    protocol messages this frame carries, for the paper's message-count
    metric when frames are batched. *)

val try_send : t -> ?logical:int -> bytes -> bool
(** Like {!send} but returns [false] instead of raising when down. *)

val is_up : t -> bool

val set_up : t -> bool -> unit

val inject_faults :
  t ->
  ?drop_prob:float ->
  ?corrupt_prob:float ->
  ?fail_after:int ->
  ?partitions:(int * int) list ->
  seed:int ->
  unit ->
  unit
(** Arm a deterministic fault plan, replacing any previous one.
    [drop_prob] / [corrupt_prob] apply independently per message from a
    {!Snapdiff_util.Rng} seeded with [seed].  [fail_after:n] raises
    {!Link_down} on the (n+1)-th send and then disarms (a transient
    crash).  [partitions] are inclusive [(lo, hi)] windows of send
    indices (1-based, counted from arming) during which every send raises
    {!Link_down}. *)

val clear_faults : t -> unit

val faults_active : t -> bool

val stats : t -> stats

val reset_stats : t -> unit
