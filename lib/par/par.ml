(* Fork-join over a lazily spawned, process-global worker pool.

   One batch runs at a time (guarded by [run_m]).  The coordinator
   publishes the batch under the pool mutex, broadcasts, and then helps
   execute it; workers and coordinator claim task indices from a shared
   atomic counter, so distribution is dynamic but the results array is
   written by task index and therefore deterministic.  Completion is a
   count-down ([remaining]) under the pool mutex; the mutex handshake
   also publishes each worker's writes to the results array to the
   coordinator (release/acquire pairing), so no further synchronization
   is needed to read the results. *)

let max_domains = 16

type batch = {
  fns : (unit -> unit) array;
  next : int Atomic.t;  (* next unclaimed task index *)
  mutable remaining : int;  (* tasks not yet finished; guarded by pool mutex *)
  max_helpers : int;  (* parallelism cap: workers beyond it skip the batch *)
  mutable helpers : int;  (* guarded by pool mutex *)
}

type pool = {
  m : Mutex.t;
  work : Condition.t;  (* a batch was published, or shutdown *)
  done_c : Condition.t;  (* a batch finished *)
  mutable current : batch option;
  mutable seq : int;  (* batch sequence number, bumped per publish *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let exec pool b =
  let n = Array.length b.fns in
  let rec go () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < n then begin
      b.fns.(i) ();
      Mutex.lock pool.m;
      b.remaining <- b.remaining - 1;
      if b.remaining = 0 then Condition.broadcast pool.done_c;
      Mutex.unlock pool.m;
      go ()
    end
  in
  go ()

(* [seen] is the sequence number of the last batch this worker joined; a
   worker never rejoins a batch (the helper count would inflate past the
   parallelism cap). *)
let rec worker_loop pool seen =
  Mutex.lock pool.m;
  let claimed = ref None in
  while !claimed = None && not pool.stop do
    (match pool.current with
    | Some b when pool.seq <> seen && b.helpers < b.max_helpers ->
      b.helpers <- b.helpers + 1;
      claimed := Some (pool.seq, b)
    | _ -> Condition.wait pool.work pool.m)
  done;
  Mutex.unlock pool.m;
  match !claimed with
  | None -> ()  (* shutdown *)
  | Some (seq, b) ->
    exec pool b;
    worker_loop pool seq

let pool_ref : pool option ref = ref None
let pool_m = Mutex.create ()  (* guards pool creation and worker spawning *)
let run_m = Mutex.create ()  (* one batch at a time *)

let shutdown () =
  let p =
    Mutex.lock pool_m;
    let p = !pool_ref in
    pool_ref := None;
    Mutex.unlock pool_m;
    p
  in
  match p with
  | None -> ()
  | Some p ->
    Mutex.lock p.m;
    p.stop <- true;
    Condition.broadcast p.work;
    Mutex.unlock p.m;
    List.iter Domain.join p.workers

(* Make sure the global pool exists and holds at least [need] workers
   (clamped to [max_domains - 1]; the calling domain is the rest). *)
let ensure_workers need =
  Mutex.lock pool_m;
  let p =
    match !pool_ref with
    | Some p -> p
    | None ->
      let p =
        { m = Mutex.create (); work = Condition.create (); done_c = Condition.create ();
          current = None; seq = 0; stop = false; workers = [] }
      in
      pool_ref := Some p;
      at_exit shutdown;
      p
  in
  let want = min need (max_domains - 1) in
  let have = List.length p.workers in
  for _ = have + 1 to want do
    p.workers <- Domain.spawn (fun () -> worker_loop p 0) :: p.workers
  done;
  Mutex.unlock pool_m;
  p

let available () = Domain.recommended_domain_count ()

let sequential tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let out = Array.make n (tasks.(0) ()) in
    for i = 1 to n - 1 do
      out.(i) <- tasks.(i) ()
    done;
    out
  end

let run ~domains tasks =
  let n = Array.length tasks in
  if domains <= 1 || n <= 1 then sequential tasks
  else begin
    let helpers = min (domains - 1) (n - 1) in
    let p = ensure_workers helpers in
    Mutex.lock run_m;
    let results = Array.make n None in
    let errors = Array.make n None in
    let fns =
      Array.mapi
        (fun i task () ->
          match task () with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()))
        tasks
    in
    let b =
      { fns; next = Atomic.make 0; remaining = n;
        max_helpers = min helpers (max_domains - 1); helpers = 0 }
    in
    Mutex.lock p.m;
    p.seq <- p.seq + 1;
    p.current <- Some b;
    Condition.broadcast p.work;
    Mutex.unlock p.m;
    exec p b;
    Mutex.lock p.m;
    while b.remaining > 0 do
      Condition.wait p.done_c p.m
    done;
    (match p.current with Some b' when b' == b -> p.current <- None | _ -> ());
    Mutex.unlock p.m;
    Mutex.unlock run_m;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map (function Some v -> v | None -> assert false) results
  end
