(** A small deterministic fork-join domain pool.

    [run ~domains tasks] executes the task thunks on up to [domains]
    domains (the calling domain plus [domains - 1] pooled workers) and
    returns their results {e in task order}: result [i] is what
    [tasks.(i) ()] returned, regardless of which domain ran it or in what
    real-time order the tasks finished.  With [domains <= 1] (or fewer
    than two tasks) the tasks run inline on the calling domain, left to
    right — the degenerate case is ordinary sequential code, so callers
    can thread a [domains] knob straight through without branching.

    Worker domains are spawned lazily into one process-global pool
    (capped at {!max_domains} total domains) and parked on a condition
    variable between batches, so a refresh loop dispatching thousands of
    small page-range batches pays the domain-spawn cost once, not per
    batch.  The pool is shut down and joined via [at_exit].

    Batches are serialized: concurrent [run] calls from different domains
    queue behind one another, and a task must never call [run] itself
    (it would deadlock on the batch lock).

    If one or more tasks raise, the remaining tasks still run to
    completion (fail-stop per task), and [run] re-raises the raising
    task with the lowest index, with its backtrace. *)

val max_domains : int
(** Upper bound on total domains [run] will ever use (calling domain
    included); requests beyond it are clamped.  16. *)

val available : unit -> int
(** [Domain.recommended_domain_count ()] — what the hardware can
    actually run in parallel.  Callers gate "did parallelism help"
    assertions on this, not on the requested [domains]. *)

val run : domains:int -> (unit -> 'a) array -> 'a array
(** Execute the tasks with at most [domains]-way parallelism and collect
    the results in task order. *)
