(** A lease: one consumer's claim on historical state.

    Every consumer of state that reclamation could otherwise discard — an
    in-flight chunked scan replaying the WAL tail, a log-based refresh
    cursor, a running checkpoint, a pinned MVCC read transaction — holds a
    lease naming the oldest WAL LSN and/or the oldest snapshot epoch it
    still needs.  Reclamation ({!Horizon.lsn_floor},
    {!Horizon.epoch_floor}) computes its floor as the minimum over live
    leases, so holding a lease is both necessary and sufficient to keep
    the named state alive: [Catchup_truncated] is impossible for a leased
    scan because the truncation that would cause it cannot pass the
    lease's LSN.

    Leases are acquired from a {!Horizon} (which owns the registry) and
    released here; {!release} is idempotent and exception-safe call sites
    should pair acquire/release with [Fun.protect] (or use
    {!Horizon.with_lease}). *)

type kind =
  | Scan  (** a chunked refresh scan's WAL-tail catch-up window *)
  | Log_cursor  (** a log-based snapshot's persistent refresh cursor *)
  | Checkpoint  (** a fuzzy checkpoint's redo window while it runs *)
  | Pinned_read  (** a pinned MVCC read transaction's epoch *)

val kind_name : kind -> string
(** ["scan"], ["log-cursor"], ["checkpoint"], ["pinned-read"]. *)

type t

val make : id:int -> kind:kind -> holder:string -> ?lsn:int -> ?epoch:int -> unit -> t
(** Used by {!Horizon.acquire}; not intended for direct use. *)

val set_on_release : t -> (unit -> unit) -> unit
(** Installed by the owning horizon to unregister the lease. *)

val id : t -> int
val kind : t -> kind
val holder : t -> string

val lsn : t -> int option
(** The oldest WAL LSN this lease still needs, if any. *)

val epoch : t -> int option
(** The oldest snapshot epoch this lease still needs, if any. *)

val live : t -> bool
(** False after {!release}. *)

val release : t -> unit
(** Idempotent.  Drops the lease from its horizon; the floors recompute
    on the next query. *)

val move_lsn : t -> int -> unit
(** Advance (or install) the leased LSN — a log cursor moving forward
    after a committed refresh.  No-op on a released lease. *)

val move_epoch : t -> int -> unit
(** Likewise for the leased epoch. *)

(** One lease that held a truncation floor below its ceiling — the
    operator-facing "what gated this checkpoint" report. *)
type gating = { g_kind : kind; g_holder : string; g_lsn : int }

val gating_of : t -> lsn:int -> gating

val gating_to_string : gating -> string
(** ["kind:holder@lsn"]. *)
