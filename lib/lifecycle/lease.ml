module Metrics = Snapdiff_obs.Metrics

let m_acquired = Metrics.counter Metrics.global "lifecycle.leases_acquired"
let m_released = Metrics.counter Metrics.global "lifecycle.leases_released"
let m_live = Metrics.gauge Metrics.global "lifecycle.leases_live"

type kind = Scan | Log_cursor | Checkpoint | Pinned_read

let kind_name = function
  | Scan -> "scan"
  | Log_cursor -> "log-cursor"
  | Checkpoint -> "checkpoint"
  | Pinned_read -> "pinned-read"

type t = {
  lease_id : int;
  lease_kind : kind;
  lease_holder : string;
  mutable lease_lsn : int option;
  mutable lease_epoch : int option;
  mutable lease_live : bool;
  mutable on_release : unit -> unit;  (* installed by the owning horizon *)
}

let make ~id ~kind ~holder ?lsn ?epoch () =
  Metrics.incr m_acquired;
  Metrics.shift m_live 1.0;
  {
    lease_id = id;
    lease_kind = kind;
    lease_holder = holder;
    lease_lsn = lsn;
    lease_epoch = epoch;
    lease_live = true;
    on_release = ignore;
  }

let set_on_release l f = l.on_release <- f

let id l = l.lease_id
let kind l = l.lease_kind
let holder l = l.lease_holder
let lsn l = l.lease_lsn
let epoch l = l.lease_epoch
let live l = l.lease_live

let release l =
  if l.lease_live then begin
    l.lease_live <- false;
    Metrics.incr m_released;
    Metrics.shift m_live (-1.0);
    let f = l.on_release in
    l.on_release <- ignore;
    f ()
  end

(* Moves update the resource the lease protects; a released lease is a
   tombstone and silently ignores them (the idempotent-release contract
   would otherwise force every cursor-advance site to re-check). *)
let move_lsn l lsn = if l.lease_live then l.lease_lsn <- Some lsn
let move_epoch l e = if l.lease_live then l.lease_epoch <- Some e

type gating = { g_kind : kind; g_holder : string; g_lsn : int }

let gating_of l ~lsn = { g_kind = l.lease_kind; g_holder = l.lease_holder; g_lsn = lsn }

let gating_to_string g =
  Printf.sprintf "%s:%s@%d" (kind_name g.g_kind) g.g_holder g.g_lsn
