type policy = { retain_epochs : int; retain_duration : int option }

let default_policy = { retain_epochs = 1; retain_duration = None }

type t = {
  lock : Mutex.t;
  mutable next_id : int;
  leases : (int, Lease.t) Hashtbl.t;
  mutable pol : policy;
}

let create ?(policy = default_policy) () =
  { lock = Mutex.create (); next_id = 0; leases = Hashtbl.create 8; pol = policy }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let policy t = locked t (fun () -> t.pol)
let set_policy t p = locked t (fun () -> t.pol <- p)

let acquire t ~kind ?(holder = "?") ?lsn ?epoch () =
  locked t (fun () ->
      let id = t.next_id in
      t.next_id <- id + 1;
      let l = Lease.make ~id ~kind ~holder ?lsn ?epoch () in
      (* The release hook re-enters this horizon's lock; Lease.release is
         only ever called outside of it (no horizon call runs user code
         under the lock), so the order is always lease -> horizon. *)
      Lease.set_on_release l (fun () ->
          locked t (fun () -> Hashtbl.remove t.leases id));
      Hashtbl.replace t.leases id l;
      l)

let with_lease t ~kind ?holder ?lsn ?epoch f =
  let l = acquire t ~kind ?holder ?lsn ?epoch () in
  Fun.protect ~finally:(fun () -> Lease.release l) (fun () -> f l)

let live_leases t =
  locked t (fun () ->
      Hashtbl.fold (fun _ l acc -> l :: acc) t.leases []
      |> List.sort (fun a b -> compare (Lease.id a) (Lease.id b)))

let lease_count t = locked t (fun () -> Hashtbl.length t.leases)

let lsn_floor t ~ceiling =
  let floor, gating =
    locked t (fun () ->
        Hashtbl.fold
          (fun _ l ((floor, gating) as acc) ->
            match Lease.lsn l with
            | Some lsn when lsn < ceiling ->
              (min lsn floor, Lease.gating_of l ~lsn :: gating)
            | Some _ | None -> acc)
          t.leases (ceiling, []))
  in
  ( floor,
    List.sort
      (fun a b ->
        compare (a.Lease.g_lsn, a.Lease.g_holder) (b.Lease.g_lsn, b.Lease.g_holder))
      gating )

let epoch_floor t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ l acc ->
          match (Lease.epoch l, acc) with
          | Some e, Some m -> Some (min e m)
          | Some e, None -> Some e
          | None, _ -> acc)
        t.leases None)
