(** The retention horizon: the single source of truncation and
    reclamation floors.

    One horizon guards one reclaimable resource — a WAL (floors are
    LSNs) or a snapshot's MVCC epoch ring (floors are epochs).  Every
    consumer of historical state registers a {!Lease.t} here; the floor
    any reclaimer may advance to is the minimum over live leases,
    composed with the per-snapshot retention {!policy}.  Nothing else in
    the system is allowed to hold reclamation back: if a component needs
    old state, it holds a lease, and if it holds a lease, the state
    stays.

    Thread-safe: leases are acquired and released from reader domains
    concurrently with refresh commits and checkpoints. *)

(** Per-snapshot retention policy, composed with the lease floor:
    [retain_epochs] committed epochs stay readable (the MVCC ring size),
    and versions younger than [retain_duration] clock ticks (against the
    snapshot's own SnapTime) are not vacuumed even when the ring would
    let them go. *)
type policy = { retain_epochs : int; retain_duration : int option }

val default_policy : policy
(** [{ retain_epochs = 1; retain_duration = None }] — the inert default:
    only the live head, no time-based window. *)

type t

val create : ?policy:policy -> unit -> t

val policy : t -> policy
val set_policy : t -> policy -> unit

val acquire :
  t -> kind:Lease.kind -> ?holder:string -> ?lsn:int -> ?epoch:int -> unit -> Lease.t
(** Register a lease.  [holder] is a diagnostic label (defaults to
    ["?"]); [lsn]/[epoch] name the oldest WAL LSN / epoch the consumer
    needs (either, or both).  Release with {!Lease.release}. *)

val with_lease :
  t ->
  kind:Lease.kind ->
  ?holder:string ->
  ?lsn:int ->
  ?epoch:int ->
  (Lease.t -> 'a) ->
  'a
(** [acquire], run the function, release — also on exceptions. *)

val live_leases : t -> Lease.t list
(** Acquisition order. *)

val lease_count : t -> int

val lsn_floor : t -> ceiling:int -> int * Lease.gating list
(** The highest LSN reclamation may truncate to, at most [ceiling] (the
    reclaimer's own bound, e.g. a checkpoint's begin LSN), lowered to the
    oldest leased LSN.  The gating list names every live lease whose LSN
    is below the ceiling — what held the floor down — sorted by LSN. *)

val epoch_floor : t -> int option
(** The oldest leased epoch, or [None] when no live lease names one.
    Versions at or above the floor must not be reclaimed. *)
