module Metrics = Snapdiff_obs.Metrics

let m_begins = Metrics.counter Metrics.global "txn.begins"
let m_commits = Metrics.counter Metrics.global "txn.commits"
let m_aborts = Metrics.counter Metrics.global "txn.aborts"

type manager = {
  locks : Lock.t;
  mutable next_id : int;
  active : (int, unit) Hashtbl.t;  (* ids of in-flight transactions *)
}

type state = Active | Committed | Aborted

type t = {
  mgr : manager;
  txn_id : int;
  mutable state : state;
  mutable undo : (unit -> unit) list;  (* most recent first *)
}

exception Would_block of { txn : int; blockers : int list }
exception Deadlock of { txn : int }
exception Not_active

let create_manager () = { locks = Lock.create (); next_id = 1; active = Hashtbl.create 8 }

let lock_table m = m.locks

let begin_txn m =
  let txn_id = m.next_id in
  m.next_id <- m.next_id + 1;
  Hashtbl.replace m.active txn_id ();
  Metrics.incr m_begins;
  { mgr = m; txn_id; state = Active; undo = [] }

let id t = t.txn_id

let is_active t = t.state = Active

let check_active t = if t.state <> Active then raise Not_active

let try_lock t res mode =
  check_active t;
  Lock.acquire t.mgr.locks t.txn_id res mode

let lock t res mode =
  match try_lock t res mode with
  | `Granted -> ()
  | `Would_block blockers -> raise (Would_block { txn = t.txn_id; blockers })
  | `Deadlock -> raise (Deadlock { txn = t.txn_id })

let unlock t res =
  check_active t;
  Lock.release_one t.mgr.locks t.txn_id res

let on_abort t f =
  check_active t;
  t.undo <- f :: t.undo

let finish t final =
  t.state <- final;
  Hashtbl.remove t.mgr.active t.txn_id;
  Lock.release_all t.mgr.locks t.txn_id

let commit t =
  check_active t;
  t.undo <- [];
  Metrics.incr m_commits;
  finish t Committed

let abort t =
  check_active t;
  List.iter (fun f -> f ()) t.undo;
  t.undo <- [];
  Metrics.incr m_aborts;
  finish t Aborted

let active_count m = Hashtbl.length m.active

let active_ids m =
  List.sort Int.compare (Hashtbl.fold (fun id () acc -> id :: acc) m.active [])
