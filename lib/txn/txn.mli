(** Transaction manager.

    Coordinates transaction identity, two-phase locking via {!Lock}, and
    undo actions for abort.  Updates register an undo closure (physical
    before-image restoration is done by the caller, which knows the table);
    commit releases locks, abort runs the undo chain in reverse then
    releases.

    The simulation is cooperative: a lock conflict raises {!Would_block}
    (carrying the blockers) or {!Deadlock}; drivers — tests and the
    concurrency examples — catch these to implement waiting or victim
    abort. *)

type manager

type t
(** A live transaction handle. *)

exception Would_block of { txn : int; blockers : int list }
exception Deadlock of { txn : int }
exception Not_active

val create_manager : unit -> manager

val lock_table : manager -> Lock.t

val begin_txn : manager -> t

val id : t -> int

val is_active : t -> bool

val lock : t -> Lock.resource -> Lock.mode -> unit
(** Acquire or upgrade; raises {!Would_block} / {!Deadlock} on conflict.
    On [`Would_block] the request remains queued: when the blockers
    release, {!commit}/{!abort} of those transactions re-grants and the
    driver may retry [lock], which will then find the lock held. *)

val try_lock : t -> Lock.resource -> Lock.mode ->
  [ `Granted | `Would_block of int list | `Deadlock ]

val unlock : t -> Lock.resource -> int list
(** Early release of one granted resource ({!Lock.release_one}) — the
    deliberate non-two-phase step the chunked refresh scan uses to drop a
    chunk's page locks while keeping its table intention lock.  Returns
    the transactions whose queued requests were granted.  A no-op if the
    resource is not held. *)

val on_abort : t -> (unit -> unit) -> unit
(** Register an undo action (run in reverse order on abort). *)

val commit : t -> int list
(** Returns transactions whose queued lock requests were granted. *)

val abort : t -> int list

val active_count : manager -> int

val active_ids : manager -> int list
(** Ids of the in-flight transactions, ascending — what a fuzzy
    checkpoint records as its active set. *)
