(** Hierarchical lock manager (System R style).

    The refresh algorithm needs "a table level lock on the base table during
    the fix up (and refresh) procedures" to obtain a transaction-consistent
    view.  Ordinary base-table operations take intention locks on the table
    and exclusive locks on entries; refresh takes a table-level lock that
    excludes writers.

    The manager is cooperative (the whole system is a single-threaded
    simulation): {!acquire} never blocks, it either grants, queues the
    request and reports [`Would_block], or refuses with [`Deadlock] when
    granting the wait would close a cycle in the waits-for graph.  A queued
    request is granted during some later {!release_all} and surfaced through
    that call's result. *)

type mode = IS | IX | S | SIX | X

val mode_name : mode -> string

val compatible : mode -> mode -> bool
(** Standard compatibility matrix. *)

val supremum : mode -> mode -> mode
(** Least mode covering both; used for lock upgrades (e.g. [S + IX = SIX]). *)

val covers : mode -> mode -> bool
(** [covers held wanted]: a holder of [held] needs no new lock for
    [wanted]. *)

type resource =
  | Table of string
  | Page of string * int
      (** one data page of a table — the granule of the chunked refresh
          scan, which couples short page locks under a table intention
          lock instead of holding a table lock for the whole scan *)
  | Entry of string * Snapdiff_storage.Addr.t

val pp_resource : Format.formatter -> resource -> unit

type txn_id = int

type t

val create : unit -> t

val acquire :
  t -> txn_id -> resource -> mode ->
  [ `Granted | `Would_block of txn_id list | `Deadlock ]
(** Re-entrant; an upgrade request replaces the held mode with the
    supremum.  [`Would_block holders] lists the transactions standing in
    the way; the request stays queued. *)

val release_all : t -> txn_id -> txn_id list
(** Drop every lock and queued request of the transaction; returns the
    transactions whose queued requests became granted as a result. *)

val release_one : t -> txn_id -> resource -> txn_id list
(** Release a single granted resource before the transaction ends (the
    deliberate non-two-phase step of the chunked refresh protocol: page
    locks are dropped as the scan cursor moves past them, while the
    table intention lock is kept to the end).  The freed queue is
    re-driven exactly as in {!release_all}; returns the transactions
    whose queued requests became granted.  A no-op (returning []) if the
    transaction does not hold the resource; queued requests of the
    releasing transaction itself are untouched. *)

val cancel_waits : t -> txn_id -> txn_id list
(** Drop only the queued (not yet granted) requests of a transaction.
    Every queue this shortens is re-driven, exactly as in {!release_all};
    returns the transactions whose queued requests became granted. *)

val holds : t -> txn_id -> resource -> mode option

val holders : t -> resource -> (txn_id * mode) list

val waiting : t -> resource -> (txn_id * mode) list

val queued_resources : t -> resource list
(** Resources with a non-empty wait queue (any order); for invariant
    checks — after any release no grantable request may sit at a queue
    head. *)

val lock_count : t -> int
(** Total granted locks, for leak tests. *)
