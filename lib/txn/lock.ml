module Metrics = Snapdiff_obs.Metrics
module Trace = Snapdiff_obs.Trace

let m_acquires = Metrics.counter Metrics.global "lock.acquires"
let m_grants = Metrics.counter Metrics.global "lock.grants"
let m_waits = Metrics.counter Metrics.global "lock.waits"
let m_deadlocks = Metrics.counter Metrics.global "lock.deadlocks"
let m_wakeups = Metrics.counter Metrics.global "lock.wakeups"
let m_queue_depth = Metrics.gauge Metrics.global "lock.queue_depth"

type mode = IS | IX | S | SIX | X

let mode_name = function
  | IS -> "IS"
  | IX -> "IX"
  | S -> "S"
  | SIX -> "SIX"
  | X -> "X"

let compatible a b =
  match (a, b) with
  | IS, (IS | IX | S | SIX) | (IX | S | SIX), IS -> true
  | IX, IX -> true
  | S, S -> true
  | _ -> false

let rank = function IS -> 0 | IX -> 1 | S -> 2 | SIX -> 3 | X -> 4

let supremum a b =
  match (a, b) with
  | x, y when x = y -> x
  | (IS, m) | (m, IS) -> m
  | (IX, S) | (S, IX) | (IX, SIX) | (SIX, IX) | (S, SIX) | (SIX, S) -> SIX
  | (X, _) | (_, X) -> X
  | _ -> if rank a >= rank b then a else b

let covers held wanted =
  supremum held wanted = held

type resource =
  | Table of string
  | Page of string * int
  | Entry of string * Snapdiff_storage.Addr.t

let pp_resource ppf = function
  | Table t -> Format.fprintf ppf "table:%s" t
  | Page (t, p) -> Format.fprintf ppf "page:%s/%d" t p
  | Entry (t, a) -> Format.fprintf ppf "entry:%s/%a" t Snapdiff_storage.Addr.pp a

type txn_id = int

type request = { txn : txn_id; mode : mode }

type t = {
  granted : (resource, (txn_id, mode) Hashtbl.t) Hashtbl.t;
  queues : (resource, request list ref) Hashtbl.t;  (* FIFO: head first *)
  held : (txn_id, (resource, unit) Hashtbl.t) Hashtbl.t;
  waits : (txn_id, (resource, unit) Hashtbl.t) Hashtbl.t;
      (* every resource the txn has a queued request on — a txn blocked on
         one resource can go on to queue on others, and the deadlock
         detector must see all of its outgoing edges *)
}

let create () =
  {
    granted = Hashtbl.create 64;
    queues = Hashtbl.create 16;
    held = Hashtbl.create 16;
    waits = Hashtbl.create 16;
  }

let holders_tbl t res =
  match Hashtbl.find_opt t.granted res with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 4 in
    Hashtbl.replace t.granted res h;
    h

let queue_ref t res =
  match Hashtbl.find_opt t.queues res with
  | Some q -> q
  | None ->
    let q = ref [] in
    Hashtbl.replace t.queues res q;
    q

let holders t res =
  match Hashtbl.find_opt t.granted res with
  | None -> []
  | Some h -> Hashtbl.fold (fun txn mode acc -> (txn, mode) :: acc) h []

let waiting t res =
  match Hashtbl.find_opt t.queues res with
  | None -> []
  | Some q -> List.map (fun r -> (r.txn, r.mode)) !q

let queued_resources t =
  Hashtbl.fold (fun res q acc -> if !q <> [] then res :: acc else acc) t.queues []

let holds t txn res =
  match Hashtbl.find_opt t.granted res with
  | None -> None
  | Some h -> Hashtbl.find_opt h txn

let note_held t txn res =
  let set =
    match Hashtbl.find_opt t.held txn with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace t.held txn s;
      s
  in
  Hashtbl.replace set res ()

let note_wait t txn res =
  let set =
    match Hashtbl.find_opt t.waits txn with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 4 in
      Hashtbl.replace t.waits txn s;
      s
  in
  Hashtbl.replace set res ()

let forget_wait t txn res =
  match Hashtbl.find_opt t.waits txn with
  | None -> ()
  | Some s ->
    Hashtbl.remove s res;
    if Hashtbl.length s = 0 then Hashtbl.remove t.waits txn

let waited_resources t txn =
  match Hashtbl.find_opt t.waits txn with
  | None -> []
  | Some s -> Hashtbl.fold (fun res () acc -> res :: acc) s []

(* Transactions blocking [txn]'s queued request on [res]: incompatible
   holders plus everything queued ahead of it. *)
let blockers t txn res mode =
  let hs =
    List.filter_map
      (fun (other, m) ->
        if other <> txn && not (compatible mode m) then Some other else None)
      (holders t res)
  in
  let ahead =
    match Hashtbl.find_opt t.queues res with
    | None -> []
    | Some q ->
      let rec take acc = function
        | [] -> acc
        | r :: _ when r.txn = txn -> acc
        | r :: rest -> take (r.txn :: acc) rest
      in
      take [] !q
  in
  List.sort_uniq Int.compare (hs @ ahead)

(* Would adding edge [txn -> blockers(res)] close a cycle?  Walk the
   waits-for graph: a waiting transaction points at the blockers of every
   one of its queued requests, not just the most recent one. *)
let creates_deadlock t txn res mode =
  let visited = Hashtbl.create 16 in
  let rec reaches_txn from =
    if from = txn then true
    else if Hashtbl.mem visited from then false
    else begin
      Hashtbl.replace visited from ();
      let next =
        List.concat_map
          (fun wres ->
            let wmode =
              match Hashtbl.find_opt t.queues wres with
              | None -> None
              | Some q ->
                List.find_map (fun r -> if r.txn = from then Some r.mode else None) !q
            in
            match wmode with None -> [] | Some m -> blockers t from wres m)
          (waited_resources t from)
      in
      List.exists reaches_txn next
    end
  in
  List.exists reaches_txn (blockers t txn res mode)

let grantable t txn res mode =
  List.for_all
    (fun (other, m) -> other = txn || compatible mode m)
    (holders t res)

let enqueue t txn res mode =
  let q = queue_ref t res in
  if not (List.exists (fun r -> r.txn = txn && r.mode = mode) !q) then begin
    q := !q @ [ { txn; mode } ];
    Metrics.shift m_queue_depth 1.0
  end;
  note_wait t txn res

let acquire t txn res mode =
  Metrics.incr m_acquires;
  let target =
    match holds t txn res with
    | Some held -> supremum held mode
    | None -> mode
  in
  match holds t txn res with
  | Some held when covers held mode ->
    Metrics.incr m_grants;
    `Granted
  | _ ->
    let queue_empty_for_us =
      match Hashtbl.find_opt t.queues res with
      | None -> true
      | Some q -> List.for_all (fun r -> r.txn = txn) !q
    in
    if grantable t txn res target && queue_empty_for_us then begin
      Hashtbl.replace (holders_tbl t res) txn target;
      note_held t txn res;
      Metrics.incr m_grants;
      `Granted
    end
    else if creates_deadlock t txn res target then begin
      Metrics.incr m_deadlocks;
      Trace.event "lock.deadlock"
        ~attrs:
          [ ("txn", string_of_int txn);
            ("resource", Format.asprintf "%a" pp_resource res) ];
      `Deadlock
    end
    else begin
      enqueue t txn res target;
      Metrics.incr m_waits;
      `Would_block (blockers t txn res target)
    end

let try_grant_queued t res =
  (* Grant from the head of the queue while compatible. *)
  match Hashtbl.find_opt t.queues res with
  | None -> []
  | Some q ->
    let granted = ref [] in
    let rec go () =
      match !q with
      | [] -> ()
      | r :: rest ->
        let target =
          match holds t r.txn res with
          | Some held -> supremum held r.mode
          | None -> r.mode
        in
        if grantable t r.txn res target then begin
          Hashtbl.replace (holders_tbl t res) r.txn target;
          note_held t r.txn res;
          q := rest;
          Metrics.shift m_queue_depth (-1.0);
          if not (List.exists (fun r' -> r'.txn = r.txn) rest) then
            forget_wait t r.txn res;
          Metrics.incr m_wakeups;
          granted := r.txn :: !granted;
          go ()
        end
    in
    go ();
    List.rev !granted

(* Drop every queued request of [txn] and report which queues actually
   shortened — each of those may now have a grantable head (the departing
   request could have been the only thing ahead of it). *)
let remove_queued t txn =
  Hashtbl.fold
    (fun res q acc ->
      let before = List.length !q in
      q := List.filter (fun r -> r.txn <> txn) !q;
      let removed = before - List.length !q in
      if removed > 0 then begin
        Metrics.shift m_queue_depth (float_of_int (-removed));
        res :: acc
      end
      else acc)
    t.queues []

let release_all t txn =
  let resources =
    match Hashtbl.find_opt t.held txn with
    | None -> []
    | Some s -> Hashtbl.fold (fun res () acc -> res :: acc) s []
  in
  List.iter
    (fun res ->
      match Hashtbl.find_opt t.granted res with
      | Some h ->
        Hashtbl.remove h txn;
        if Hashtbl.length h = 0 then Hashtbl.remove t.granted res
      | None -> ())
    resources;
  Hashtbl.remove t.held txn;
  let shortened = remove_queued t txn in
  Hashtbl.remove t.waits txn;
  (* Re-drive grant on every queue this departure could unblock: resources
     the txn held AND resources where its queued requests stood ahead of
     other waiters. *)
  let candidates = List.sort_uniq compare (resources @ shortened) in
  let woken = List.concat_map (fun res -> try_grant_queued t res) candidates in
  List.sort_uniq Int.compare woken

(* Early (non-2PL) release of one granted resource: the chunked refresh
   scan releases a chunk's page locks once the cursor has moved past them,
   while keeping its table intention lock.  The freed queue is re-driven
   exactly as in {!release_all}; the txn's own queued requests (if any)
   stay queued. *)
let release_one t txn res =
  let was_held =
    match Hashtbl.find_opt t.granted res with
    | Some h when Hashtbl.mem h txn ->
      Hashtbl.remove h txn;
      if Hashtbl.length h = 0 then Hashtbl.remove t.granted res;
      true
    | _ -> false
  in
  if was_held then begin
    (match Hashtbl.find_opt t.held txn with
    | Some s ->
      Hashtbl.remove s res;
      if Hashtbl.length s = 0 then Hashtbl.remove t.held txn
    | None -> ());
    List.sort_uniq Int.compare (try_grant_queued t res)
  end
  else []

let cancel_waits t txn =
  let shortened = remove_queued t txn in
  Hashtbl.remove t.waits txn;
  let woken = List.concat_map (fun res -> try_grant_queued t res) shortened in
  List.sort_uniq Int.compare woken

let lock_count t =
  Hashtbl.fold (fun _ h acc -> acc + Hashtbl.length h) t.granted 0
