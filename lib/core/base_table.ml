open Snapdiff_storage
open Snapdiff_txn
module Change_log = Snapdiff_changelog.Change_log
module Int_btree = Snapdiff_index.Btree.Make (Int)
module Metrics = Snapdiff_obs.Metrics

let m_inserts = Metrics.counter Metrics.global "basetable.inserts"
let m_updates = Metrics.counter Metrics.global "basetable.updates"
let m_deletes = Metrics.counter Metrics.global "basetable.deletes"

type mode = Eager | Deferred

type subscription = int

type page_summary = {
  sum_live : int;
  sum_first_live : Addr.t;
  sum_last_live : Addr.t;
  sum_first_prev : Addr.t;
  sum_max_ts : Clock.ts;
  sum_token : int;
}

(* Tokens are drawn from a process-wide counter so a summary rebuilt after
   an [on_pool] restart can never collide with a token some refresher
   cached against the previous table instance.  Atomic so refreshes of
   different tables running on different domains still draw unique
   tokens. *)
let token_counter = Atomic.make 0

type t = {
  table_name : string;
  table_mode : mode;
  table_clock : Clock.t;
  user : Schema.t;
  stored : Schema.t;
  heap : Heap.t;
  live : unit Int_btree.t;  (* live addresses, for successor/predecessor *)
  summaries : (int, page_summary) Hashtbl.t;  (* data page -> exact summary *)
  mutable observers : (subscription * (Change_log.change -> unit)) list;
  mutable next_sub : subscription;
  wal : Snapdiff_wal.Wal.t option;
  mutable next_txn : int;
  mutable mutation_count : int;
}

let of_heap ~mode ~wal ~name ~clock ~user_schema heap =
  let live = Int_btree.create () in
  Heap.iter heap (fun addr _ -> Int_btree.insert live addr ());
  {
    table_name = name;
    table_mode = mode;
    table_clock = clock;
    user = user_schema;
    stored = Heap.schema heap;
    heap;
    live;
    (* Summaries are in-memory acceleration state: a table adopted from an
       existing store starts with none and the first scan rebuilds them. *)
    summaries = Hashtbl.create 64;
    observers = [];
    next_sub = 1;
    wal;
    next_txn = 1;
    mutation_count = 0;
  }

let create ?(mode = Deferred) ?(page_size = 4096) ?(frames = 128) ?wal ~name ~clock
    user_schema =
  let stored = Annotations.extend_schema user_schema in
  of_heap ~mode ~wal ~name ~clock ~user_schema (Heap.create ~page_size ~frames stored)

let on_pool ?(mode = Deferred) ?wal ~name ~clock pool user_schema =
  let stored = Annotations.extend_schema user_schema in
  of_heap ~mode ~wal ~name ~clock ~user_schema (Heap.on_pool pool stored)

let flush t = Heap.flush t.heap

let pool t = Heap.pool t.heap

let name t = t.table_name
let mode t = t.table_mode
let wal t = t.wal
let clock t = t.table_clock
let user_schema t = t.user
let stored_schema t = t.stored
let count t = Heap.count t.heap
let mutations t = t.mutation_count

let subscribe t f =
  let id = t.next_sub in
  t.next_sub <- id + 1;
  t.observers <- t.observers @ [ (id, f) ];
  id

let unsubscribe t id = t.observers <- List.filter (fun (i, _) -> i <> id) t.observers

let notify t change = List.iter (fun (_, f) -> f change) t.observers

(* Each user operation is its own committed transaction in the WAL (the
   SQL layer's autocommit); annotation maintenance writes are not logged.

   Durability contract: on a file-backed group-committed WAL the Commit
   append below returns {e before} its fsync — the commit becomes durable
   only when its group-commit window fills (or on the next [Wal.sync]),
   so up to window-1 acknowledged operations can vanish in a crash.  A
   caller needing an operation on stable storage before acting on it
   must call [Wal.sync] (or wait for [Wal.durable_end_lsn] to pass the
   commit's LSN). *)
let log_op t mk =
  match t.wal with
  | None -> ()
  | Some wal ->
    let txn = t.next_txn in
    t.next_txn <- txn + 1;
    ignore (Snapdiff_wal.Wal.append wal (Snapdiff_wal.Record.Begin { txn }));
    ignore (Snapdiff_wal.Wal.append wal (mk txn));
    ignore (Snapdiff_wal.Wal.append wal (Snapdiff_wal.Record.Commit { txn }))

let stored_of t addr =
  match Heap.get t.heap addr with
  | Some tuple -> tuple
  | None -> raise Not_found

let get t addr =
  match Heap.get t.heap addr with
  | Some tuple -> Some (Annotations.user_part tuple)
  | None -> None

let get_annotations t addr =
  match Heap.get t.heap addr with
  | Some tuple -> Some (snd (Annotations.split tuple))
  | None -> None

let successor t addr = Option.map fst (Int_btree.find_first t.live ~lo:(addr + 1))

let predecessor t addr =
  if addr <= 0 then None else Option.map fst (Int_btree.find_last t.live ~hi:(addr - 1))

(* ---- page summaries ------------------------------------------------ *)

let invalidate_summary t addr = Hashtbl.remove t.summaries (Addr.page addr)

let data_pages t = Heap.data_pages t.heap

let page_summary t page = Hashtbl.find_opt t.summaries page

let record_page_summary t ~page ~live ~first_live ~last_live ~first_prev ~max_ts =
  match Hashtbl.find_opt t.summaries page with
  | Some s
    when s.sum_live = live && s.sum_first_live = first_live && s.sum_last_live = last_live
         && s.sum_first_prev = first_prev && s.sum_max_ts = max_ts ->
    (* Unchanged content keeps its token, so other snapshots' qualification
       caches against this page stay valid. *)
    s.sum_token
  | _ ->
    let token = 1 + Atomic.fetch_and_add token_counter 1 in
    Hashtbl.replace t.summaries page
      {
        sum_live = live;
        sum_first_live = first_live;
        sum_last_live = last_live;
        sum_first_prev = first_prev;
        sum_max_ts = max_ts;
        sum_token = token;
      };
    token

let summarized_pages t = Hashtbl.length t.summaries

let iter_page_stored t ~page f = Heap.iter_page t.heap ~page f

let iter_page_stored_arena t ~arena ~page f =
  Heap.iter_page_arena t.heap ~arena ~page f

(* -------------------------------------------------------------------- *)

let set_stored t addr tuple =
  invalidate_summary t addr;
  Heap.update t.heap addr tuple

let insert t user_tuple =
  (match Schema.validate_tuple t.user user_tuple with
  | Ok () -> ()
  | Error e -> raise (Heap.Tuple_error e));
  let addr = Heap.insert t.heap (Annotations.annotate user_tuple Annotations.nulls) in
  invalidate_summary t addr;
  (match t.table_mode with
  | Deferred ->
    (* "Insert operations will set the PrevAddr and TimeStamp fields to
       NULL" — already done. *)
    ()
  | Eager ->
    (* "The PrevAddr of the new entry must be set to the value of the
       PrevAddr from the next entry in the base table, and the PrevAddr in
       the next entry must be set to the address of the new entry." *)
    let now = Clock.tick t.table_clock in
    let prev =
      match successor t addr with
      | Some succ_addr ->
        let succ = stored_of t succ_addr in
        let succ_user, succ_ann = Annotations.split succ in
        ignore (succ_user : Tuple.t);
        let inherited =
          match succ_ann.Annotations.prev_addr with
          | Some p -> p
          | None -> Option.value (predecessor t addr) ~default:Addr.zero
        in
        set_stored t succ_addr
          (Annotations.with_annotations succ
             { succ_ann with Annotations.prev_addr = Some addr });
        inherited
      | None -> Option.value (predecessor t addr) ~default:Addr.zero
    in
    set_stored t addr
      (Annotations.annotate user_tuple
         { Annotations.prev_addr = Some prev; timestamp = Some now }));
  Int_btree.insert t.live addr ();
  t.mutation_count <- t.mutation_count + 1;
  Metrics.incr m_inserts;
  notify t (Change_log.Insert (addr, user_tuple));
  log_op t (fun txn ->
      Snapdiff_wal.Record.Insert
        { txn; table = t.table_name; addr; tuple = Option.get (Heap.get t.heap addr) });
  addr

let update t addr user_tuple =
  (match Schema.validate_tuple t.user user_tuple with
  | Ok () -> ()
  | Error e -> raise (Heap.Tuple_error e));
  let old_stored = stored_of t addr in
  let old_user, old_ann = Annotations.split old_stored in
  let new_ann =
    match t.table_mode with
    | Deferred ->
      (* "Update operations will simply set the TimeStamp field to NULL." *)
      { old_ann with Annotations.timestamp = None }
    | Eager -> { old_ann with Annotations.timestamp = Some (Clock.tick t.table_clock) }
  in
  invalidate_summary t addr;
  Heap.update t.heap addr (Annotations.annotate user_tuple new_ann);
  t.mutation_count <- t.mutation_count + 1;
  Metrics.incr m_updates;
  notify t (Change_log.Update (addr, old_user, user_tuple));
  log_op t (fun txn ->
      Snapdiff_wal.Record.Update
        {
          txn;
          table = t.table_name;
          addr;
          old_tuple = old_stored;
          new_tuple = Option.get (Heap.get t.heap addr);
        })

let delete t addr =
  let old_stored = stored_of t addr in
  let old_user, old_ann = Annotations.split old_stored in
  invalidate_summary t addr;
  Heap.delete t.heap addr;
  ignore (Int_btree.remove t.live addr : bool);
  (match t.table_mode with
  | Deferred ->
    (* "Delete operations on the base table will be unaffected by the
       snapshots - the base table entry is simply deleted." *)
    ()
  | Eager -> (
    (* "The PrevAddr and TimeStamp fields of the succeeding base table
       entry must be updated with the PrevAddr from the deleted entry and
       the current time." *)
    match successor t addr with
    | Some succ_addr ->
      let now = Clock.tick t.table_clock in
      let succ = stored_of t succ_addr in
      let _, succ_ann = Annotations.split succ in
      ignore (succ_ann : Annotations.t);
      set_stored t succ_addr
        (Annotations.with_annotations succ
           {
             Annotations.prev_addr = old_ann.Annotations.prev_addr;
             timestamp = Some now;
           })
    | None ->
      (* Deletion at the end of the table leaves no annotation anywhere;
         the refresh algorithm's unconditional tail message covers it. *)
      ()));
  t.mutation_count <- t.mutation_count + 1;
  Metrics.incr m_deletes;
  notify t (Change_log.Delete (addr, old_user));
  log_op t (fun txn ->
      Snapdiff_wal.Record.Delete
        { txn; table = t.table_name; addr; old_tuple = old_stored })

let to_user_list t =
  List.map (fun (addr, tuple) -> (addr, Annotations.user_part tuple)) (Heap.to_list t.heap)

let iter_stored t f = Heap.iter t.heap f

let last_addr t = Option.value (Heap.last_addr t.heap) ~default:Addr.zero

let lock_resource t = Lock.Table t.table_name

let page_lock_resource t page = Lock.Page (t.table_name, page)
