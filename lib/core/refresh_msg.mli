(** Messages sent from the base-table site to a snapshot site during
    refresh.

    One type covers every refresh method in the paper so that all methods
    are measured with the same cost meter:

    - {!Entry} and {!Tail} are the differential (PrevAddr) algorithm's
      messages: an entry transmission carries "the address of the preceding
      qualified entry and the value of the entry" (Figure 3), deleting
      every snapshot entry strictly between them; the unconditional tail
      message [Xmit(NULL, LastQual, NULL)] handles deletions at the end of
      the base table.
    - {!Region} is the empty-regions variant's message: the bounds of a
      (possibly combined) empty region.
    - {!Upsert}/{!Remove} are the per-address messages of the simple dense
      algorithm, the ideal algorithm, ASAP propagation and the log-based
      method.
    - {!Clear} precedes a full refresh ("the snapshot is first cleared").
    - {!Snaptime} closes every refresh: "the current (base table) time is
      sent to the snapshot to become the new SnapTime".

    Values carried are already restricted and projected: "this allows each
    (remote) snapshot to extract only needed data from the base table". *)

open Snapdiff_storage

type t =
  | Entry of { addr : Addr.t; prev_qual : Addr.t; values : Tuple.t }
  | Tail of { last_qual : Addr.t }
  | Region of { lo : Addr.t; hi : Addr.t }  (** inclusive bounds *)
  | Upsert of { addr : Addr.t; values : Tuple.t }
  | Remove of { addr : Addr.t }
  | Clear
  | Snaptime of Snapdiff_txn.Clock.ts
  | Register of { restrict : string; projection : string list }
      (** control, snapshot->base at CREATE SNAPSHOT: the restriction and
          projection the base will compile (R* sends them once) *)
  | Request of { snaptime : Snapdiff_txn.Clock.ts }
      (** control, snapshot->base: "the simple differential refresh
          algorithm is initiated by sending the last snapshot refresh time
          (SnapTime) ... to the base table" *)
  | Batch of t list
      (** transport coalescing: many data messages under one link header
          and checksum.  The receiver unbatches before applying, so batch
          boundaries never have protocol meaning; the commit-marking
          {!Snaptime} is never batched. *)

val is_data : t -> bool
(** Messages counted by the paper's evaluation metric (everything except
    the fixed {!Clear}/{!Snaptime} bracketing).  A {!Batch} is data iff it
    carries any data message. *)

val batchable : t -> bool
(** Messages a sender may coalesce into a {!Batch}: exactly the per-entry
    data messages.  Control messages — in particular the commit-marking
    {!Snaptime} — always travel alone, which guarantees any buffered
    batch is flushed before the stream can commit. *)

val logical_count : t -> int
(** Number of protocol messages this value represents: the batch size for
    a {!Batch} (recursively), 1 otherwise. *)

val pp : Format.formatter -> t -> unit

val encode : t -> bytes

val decode : bytes -> t
(** Raises [Failure] on a corrupt image. *)

val equal : t -> t -> bool

(** {1 Epoch framing}

    A refresh stream is only meaningful as a whole: applying a prefix
    (link crash), a subsequence (silent loss), or a garbled member
    (corruption) leaves the snapshot in a state that is neither the old
    nor the new consistent image.  Framed messages carry the stream's
    epoch, a sequence number, and a payload checksum so the receiver can
    detect all three and apply the stream atomically at its {!Snaptime}
    commit marker.  The frame tag byte is disjoint from every raw message
    tag, so framed and legacy raw encodings coexist on the same links. *)

type frame = { epoch : int; seq : int; msg : t }

exception Corrupt of string

val encode_framed : epoch:int -> seq:int -> t -> bytes

val is_framed : bytes -> bool

val decode_framed : bytes -> frame
(** Raises {!Corrupt} on a checksum mismatch, an undecodable payload, or
    a truncated frame. *)
