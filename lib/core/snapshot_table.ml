open Snapdiff_storage
open Snapdiff_txn
module Int_btree = Snapdiff_index.Btree.Make (Int)
module Metrics = Snapdiff_obs.Metrics
module Trace = Snapdiff_obs.Trace
module Version_store = Snapdiff_mvcc.Version_store
module Lease = Snapdiff_lifecycle.Lease
module Horizon = Snapdiff_lifecycle.Horizon

exception Corrupt_snapshot of string

let m_stream_commits = Metrics.counter Metrics.global "snapshot.stream_commits"
let m_stream_aborts = Metrics.counter Metrics.global "snapshot.stream_aborts"

module Value_btree = Snapdiff_index.Btree.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

let baseaddr_col = "__baseaddr"

(* A secondary index: column value -> set of BaseAddrs holding it. *)
type secondary = {
  sec_column : int;  (* position in the user schema *)
  entries : (Addr.t, unit) Hashtbl.t Value_btree.t;
}

(* An in-flight framed refresh stream.  Messages are staged here and only
   touch the table when the stream's commit marker (Snaptime) arrives with
   no gap, truncation, or corruption; a bad stream is discarded wholesale,
   leaving the previous consistent image intact. *)
type stage = {
  mutable stage_epoch : int;  (* -1 until a well-formed frame names it *)
  mutable expected_seq : int;
  mutable staged : Refresh_msg.t list;  (* newest first *)
  mutable poison : string option;
}

type t = {
  snap_name : string;
  user : Schema.t;
  stored : Schema.t;  (* user + __baseaddr *)
  heap : Heap.t;
  index : Addr.t Int_btree.t;  (* BaseAddr -> heap rid *)
  secondaries : (string, secondary) Hashtbl.t;  (* lowercased column name *)
  mutable observers : (Refresh_msg.t -> unit) list;
  mutable time : Clock.ts;
  mutable stage : stage option;
  mutable commits : int;
  mutable aborts : int;
  mutable last_abort : string option;
  mutable committed_epoch : int;  (* -1 before any framed commit *)
  versions : Version_store.t;  (* MVCC epoch ring; inert until retained/pinned *)
  horizon : Horizon.t;  (* epoch leases + retention policy for this snapshot *)
}

(* The version store's window onto the live image: logical pages keyed by
   BaseAddr span, assembled from the BaseAddr index on demand.  Closures
   capture heap and index directly so the store can be built before the
   table record exists. *)
let version_page_span = 64  (* BaseAddrs per logical version page *)

let make_live ~user ~heap ~index : Version_store.live =
  let span = version_page_span in
  let user_arity = Schema.arity user in
  let user_of stored = Array.sub stored 0 user_arity in
  {
    Version_store.live_page =
      (fun pid ->
        let lo = pid * span and hi = (pid * span) + span - 1 in
        let acc = ref [] in
        Int_btree.iter_range index ~lo ~hi (fun a rid ->
            match Heap.get heap rid with
            | Some stored -> acc := (a, user_of stored) :: !acc
            | None -> ());
        match !acc with [] -> None | l -> Some (Array.of_list (List.rev l)));
    live_pids =
      (fun () ->
        List.rev
          (Int_btree.fold index ~init:[] ~f:(fun acc a _ ->
               let pid = a / span in
               match acc with p :: _ when p = pid -> acc | _ -> pid :: acc)));
    live_get =
      (fun a ->
        match Int_btree.find index a with
        | None -> None
        | Some rid -> Option.map user_of (Heap.get heap rid));
    live_count = (fun () -> Heap.count heap);
  }

let make_versions ?version_strategy ?version_retain ~user ~heap ~index () =
  let strategy = Option.value version_strategy ~default:Version_store.Naive in
  let retain = Option.value version_retain ~default:1 in
  let live = make_live ~user ~heap ~index in
  Version_store.create ~strategy ~retain ~page_span:version_page_span ~live ()

(* The horizon's veto on version reclamation: an unpinned version stays
   as long as a live lease names an epoch at or below its own, or the
   retention policy's time window (against the snapshot's current
   SnapTime) has not yet passed it.  Runs with the version-store lock
   held; touches only the horizon (its own mutex) and [t.time]. *)
let reclaim_guard t ~epoch ~snaptime =
  (match Horizon.epoch_floor t.horizon with
  | Some floor -> epoch < floor
  | None -> true)
  &&
  match (Horizon.policy t.horizon).Horizon.retain_duration with
  | Some d -> snaptime + d < t.time
  | None -> true

(* Wire the guard after construction (the closure needs the record). *)
let with_guard t =
  Version_store.set_reclaim_guard t.versions (fun ~epoch ~snaptime ->
      reclaim_guard t ~epoch ~snaptime);
  t

let make_horizon ?version_retain ?retain_duration () =
  let retain_epochs = max 1 (Option.value version_retain ~default:1) in
  Horizon.create ~policy:{ Horizon.retain_epochs; retain_duration } ()

let create ?(page_size = 4096) ?(frames = 128) ?version_strategy ?version_retain
    ?retain_duration ~name ~schema () =
  let stored =
    Schema.extend schema [ Schema.col ~nullable:false baseaddr_col Value.Tint ]
  in
  let heap = Heap.create ~page_size ~frames stored in
  let index = Int_btree.create () in
  {
    snap_name = name;
    user = schema;
    stored;
    heap;
    index;
    secondaries = Hashtbl.create 4;
    observers = [];
    time = Clock.never;
    stage = None;
    commits = 0;
    aborts = 0;
    last_abort = None;
    committed_epoch = -1;
    versions = make_versions ?version_strategy ?version_retain ~user:schema ~heap ~index ();
    horizon = make_horizon ?version_retain ?retain_duration ();
  }
  |> with_guard

let on_pool ?(snaptime = Clock.never) ?version_strategy ?version_retain ?retain_duration
    ~name ~schema pool =
  let stored =
    Schema.extend schema [ Schema.col ~nullable:false baseaddr_col Value.Tint ]
  in
  let heap = Heap.on_pool pool stored in
  let index = Int_btree.create () in
  Heap.iter heap (fun rid tuple ->
      match tuple.(Schema.arity schema) with
      | Value.Int b -> Int_btree.insert index (Int64.to_int b) rid
      | _ ->
        raise
          (Corrupt_snapshot
             (Printf.sprintf "snapshot %s: corrupt %s column in persisted store" name
                baseaddr_col)));
  {
    snap_name = name;
    user = schema;
    stored;
    heap;
    index;
    secondaries = Hashtbl.create 4;
    observers = [];
    time = snaptime;
    stage = None;
    commits = 0;
    aborts = 0;
    last_abort = None;
    committed_epoch = -1;
    versions = make_versions ?version_strategy ?version_retain ~user:schema ~heap ~index ();
    horizon = make_horizon ?version_retain ?retain_duration ();
  }
  |> with_guard

let flush t = Heap.flush t.heap

let name t = t.snap_name
let schema t = t.user
let snaptime t = t.time
let count t = Heap.count t.heap

let stored_tuple t base_addr values =
  let n = Array.length values in
  if n <> Schema.arity t.user then
    invalid_arg "Snapshot_table: tuple dimensions do not match snapshot schema";
  Array.init (n + 1) (fun i -> if i < n then values.(i) else Value.int base_addr)

(* Secondary index maintenance. *)
let sec_add t base_addr values =
  Hashtbl.iter
    (fun _ sec ->
      let key = values.(sec.sec_column) in
      let set =
        match Value_btree.find sec.entries key with
        | Some set -> set
        | None ->
          let set = Hashtbl.create 4 in
          Value_btree.insert sec.entries key set;
          set
      in
      Hashtbl.replace set base_addr ())
    t.secondaries

let sec_remove t base_addr values =
  Hashtbl.iter
    (fun _ sec ->
      let key = values.(sec.sec_column) in
      match Value_btree.find sec.entries key with
      | Some set ->
        Hashtbl.remove set base_addr;
        if Hashtbl.length set = 0 then ignore (Value_btree.remove sec.entries key : bool)
      | None -> ())
    t.secondaries

let user_of_rid t rid =
  Option.map
    (fun stored -> Array.sub stored 0 (Schema.arity t.user))
    (Heap.get t.heap rid)

(* Every mutation funnels through {!Version_store.write}: when versions
   are retained or pinned, the store captures the touched page's pre-image
   (and holds its lock across the mutation so pinned readers never observe
   a half-applied entry); when the store is inert — the default — the
   mutation runs directly, one boolean test away from the pre-MVCC code. *)
let upsert t base_addr values =
  let stored = stored_tuple t base_addr values in
  Version_store.write t.versions (`Addr base_addr) (fun () ->
      match Int_btree.find t.index base_addr with
      | Some rid ->
        (match user_of_rid t rid with
        | Some old -> sec_remove t base_addr old
        | None -> ());
        Heap.update t.heap rid stored;
        sec_add t base_addr values
      | None ->
        let rid = Heap.insert t.heap stored in
        Int_btree.insert t.index base_addr rid;
        sec_add t base_addr values)

let remove t base_addr =
  Version_store.write t.versions (`Addr base_addr) (fun () ->
      match Int_btree.find t.index base_addr with
      | Some rid ->
        (match user_of_rid t rid with
        | Some old -> sec_remove t base_addr old
        | None -> ());
        Heap.delete t.heap rid;
        ignore (Int_btree.remove t.index base_addr : bool)
      | None -> ())

let remove_range t ~lo ~hi =
  (* Inclusive bounds; collect first, then delete (the index must not be
     mutated mid-iteration).  Each victim goes through {!remove}, so the
     version store captures every touched page. *)
  let victims = Int_btree.keys_in_range t.index ?lo ?hi () in
  List.iter (remove t) victims

let clear t =
  Version_store.write t.versions `All (fun () ->
      let all = Int_btree.to_list t.index in
      List.iter (fun (_, rid) -> Heap.delete t.heap rid) all;
      Int_btree.clear t.index;
      Hashtbl.iter (fun _ sec -> Value_btree.clear sec.entries) t.secondaries)

let subscribe t f = t.observers <- t.observers @ [ f ]

(* Observer delivery is a distinct step from the state change so that the
   commit-only delivery contract is structural: [notify] is reachable
   solely through [apply], and the framed staging path ([apply_framed])
   calls [apply] only inside its commit branch — a staged message of an
   epoch that aborts (sequence gap, truncation, corruption, supersession)
   is never delivered to subscribers.  Delivery stays per-message and
   pre-apply: {!Cascade}'s transformer reads the parent's previous state
   to decide what the child needs. *)
let notify t msg = List.iter (fun f -> f msg) t.observers

let rec apply t (msg : Refresh_msg.t) =
  match msg with
  | Refresh_msg.Batch ms ->
    (* Unbatch before notifying: observers (cascades, message meters) see
       the logical stream, never the transport coalescing. *)
    List.iter (apply t) ms
  | _ -> apply_single t msg

and apply_single t (msg : Refresh_msg.t) =
  notify t msg;
  match msg with
  | Entry { addr; prev_qual; values } ->
    (* Everything strictly between the previous qualified entry and this
       one is gone from the base table's qualified set. *)
    remove_range t ~lo:(Some (prev_qual + 1)) ~hi:(Some (addr - 1));
    upsert t addr values
  | Tail { last_qual } -> remove_range t ~lo:(Some (last_qual + 1)) ~hi:None
  | Region { lo; hi } -> remove_range t ~lo:(Some lo) ~hi:(Some hi)
  | Upsert { addr; values } -> upsert t addr values
  | Remove { addr } -> remove t addr
  | Clear -> clear t
  | Snaptime ts -> t.time <- ts
  | Register _ | Request _ ->
    (* Control messages flow the other way (snapshot -> base); receiving
       one here is harmless and means a loopback link. *)
    ()
  | Batch ms ->
    (* Unreachable via [apply], which unbatches first. *)
    List.iter (apply t) ms

(* ------------------------------------------------------------------ *)
(* Atomic application of framed streams. *)

let fresh_stage epoch = { stage_epoch = epoch; expected_seq = 0; staged = []; poison = None }

let discard_stage t ~reason =
  match t.stage with
  | None -> ()
  | Some _ ->
    t.stage <- None;
    t.aborts <- t.aborts + 1;
    t.last_abort <- Some reason;
    Metrics.incr m_stream_aborts;
    Trace.event "refresh.discard"
      ~attrs:[ ("snapshot", t.snap_name); ("reason", reason) ]

(* Mark the in-flight stream bad; it will be discarded at its commit
   marker (or when the next epoch supersedes it).  Corruption can garble
   the frame header itself, so with no stream in flight we open an
   anonymous stage that the next well-formed frame adopts. *)
let poison_stage t reason =
  match t.stage with
  | Some st -> if st.poison = None then st.poison <- Some reason
  | None -> t.stage <- Some { (fresh_stage (-1)) with poison = Some reason }

let apply_framed t { Refresh_msg.epoch; seq; msg } =
  let st =
    match t.stage with
    | Some st when st.stage_epoch = epoch -> st
    | Some st when st.stage_epoch = -1 ->
      st.stage_epoch <- epoch;
      st
    | Some st ->
      (* A frame from a different epoch means the previous stream was
         truncated before its commit marker: discard it wholesale. *)
      discard_stage t
        ~reason:
          (Printf.sprintf "epoch %d truncated (superseded by epoch %d)" st.stage_epoch epoch);
      let st = fresh_stage epoch in
      t.stage <- Some st;
      st
    | None ->
      let st = fresh_stage epoch in
      t.stage <- Some st;
      st
  in
  if seq <> st.expected_seq && st.poison = None then
    st.poison <-
      Some (Printf.sprintf "sequence gap in epoch %d: expected %d, got %d" epoch st.expected_seq seq);
  st.expected_seq <- seq + 1;
  match msg with
  | Refresh_msg.Snaptime _ -> (
    (* The commit marker: apply everything or nothing. *)
    match st.poison with
    | Some reason -> discard_stage t ~reason
    | None ->
      t.stage <- None;
      let commit_ts = match msg with Refresh_msg.Snaptime ts -> ts | _ -> t.time in
      (* Freeze the pre-commit image (when retained or pinned) before any
         staged message mutates the table, and publish the new epoch as
         the live head afterwards: readers pinned across this replay keep
         a consistent version throughout. *)
      Version_store.begin_commit t.versions;
      Fun.protect
        ~finally:(fun () ->
          Version_store.end_commit t.versions ~epoch ~snaptime:commit_ts)
        (fun () ->
          Trace.with_span "refresh.apply"
            ~attrs:[ ("snapshot", t.snap_name); ("epoch", string_of_int epoch) ]
            (fun () ->
              List.iter (apply t) (List.rev st.staged);
              apply t msg));
      t.commits <- t.commits + 1;
      t.committed_epoch <- epoch;
      Metrics.incr m_stream_commits)
  | _ -> st.staged <- msg :: st.staged

let apply_bytes t b =
  if Refresh_msg.is_framed b then
    match Refresh_msg.decode_framed b with
    | frame -> apply_framed t frame
    | exception Refresh_msg.Corrupt reason -> poison_stage t ("corrupt frame: " ^ reason)
  else
    match Refresh_msg.decode b with
    | msg ->
      if t.stage <> None then
        (* Raw bytes mid-stream can only be a frame whose tag byte was
           garbled in flight. *)
        poison_stage t "unframed bytes inside a framed stream"
      else apply t msg
    | exception Failure reason -> poison_stage t ("undecodable message: " ^ reason)

let epochs_committed t = t.commits
let epochs_aborted t = t.aborts
let last_abort t = t.last_abort
let last_committed_epoch t = t.committed_epoch
let stream_pending t = t.stage <> None
let staged_depth t = match t.stage with None -> 0 | Some st -> List.length st.staged

let get t base_addr =
  match Int_btree.find t.index base_addr with
  | None -> None
  | Some rid ->
    Option.map (fun stored -> Array.sub stored 0 (Schema.arity t.user)) (Heap.get t.heap rid)

(* Allocation-free traversals (no result list; one transient user-tuple
   view per entry): the hot read paths — fleet readers, the bench, and
   [tuples] below — go through these instead of materializing [contents]'
   O(n) assoc list per read. *)
let iter t f =
  Int_btree.iter t.index (fun base_addr rid ->
      match user_of_rid t rid with
      | Some values -> f base_addr values
      | None -> ())

let fold t ~init ~f =
  Int_btree.fold t.index ~init ~f:(fun acc base_addr rid ->
      match user_of_rid t rid with
      | Some values -> f acc base_addr values
      | None -> acc)

let contents t =
  List.rev (fold t ~init:[] ~f:(fun acc base_addr values -> (base_addr, values) :: acc))

let tuples t = List.rev (fold t ~init:[] ~f:(fun acc _ values -> values :: acc))

(* ------------------------------------------------------------------ *)
(* Versioned reads: transactions pinned to a retained refresh epoch. *)

type read_txn = { rt_table : t; rt_txn : Version_store.txn; rt_lease : Lease.t }

let version_strategy t = Version_store.strategy t.versions
let version_retain t = Version_store.retain t.versions
let versions t = Version_store.versions t.versions

let horizon t = t.horizon
let retention_policy t = Horizon.policy t.horizon
let set_retention_policy t p = Horizon.set_policy t.horizon p

(* Every pinned read holds a Pinned_read lease on the snapshot's horizon
   for its lifetime, so the epoch floor reflects open readers — the
   fleet's [set_pinned_reads] transactions come through here and are
   lease-holders for free. *)
let lease_txn t tx =
  let lease =
    Horizon.acquire t.horizon ~kind:Lease.Pinned_read ~holder:t.snap_name
      ~epoch:(Version_store.txn_epoch tx) ()
  in
  { rt_table = t; rt_txn = tx; rt_lease = lease }

let read_txn ?epoch t = Option.map (lease_txn t) (Version_store.pin ?epoch t.versions)

let read_txn_exn ?epoch t = lease_txn t (Version_store.pin_exn ?epoch t.versions)

let release_txn rt =
  Version_store.release rt.rt_txn;
  Lease.release rt.rt_lease

let vacuum ?older_than ?dry_run t = Version_store.vacuum ?older_than ?dry_run t.versions
let txn_pinned rt = Version_store.txn_pinned rt.rt_txn
let txn_epoch rt = Version_store.txn_epoch rt.rt_txn
let txn_snaptime rt = Version_store.txn_snaptime rt.rt_txn
let txn_get rt addr = Version_store.get rt.rt_txn addr
let txn_count rt = Version_store.count rt.rt_txn
let txn_iter rt f = Version_store.iter rt.rt_txn f
let txn_fold rt ~init ~f = Version_store.fold rt.rt_txn ~init ~f

let txn_exists_in_range rt ?lo ?hi ~f () =
  Version_store.exists_in_range rt.rt_txn ?lo ?hi ~f ()

let txn_contents rt =
  List.rev (txn_fold rt ~init:[] ~f:(fun acc addr values -> (addr, values) :: acc))

let txn_lookup rt ~column value =
  (* Secondary indexes track only the live image; at a pinned version the
     lookup is an index-free scan of the version's pages. *)
  match Schema.index_of rt.rt_table.user column with
  | None -> invalid_arg (Printf.sprintf "Snapshot_table.txn_lookup: unknown column %s" column)
  | Some i ->
    List.rev
      (txn_fold rt ~init:[] ~f:(fun acc addr values ->
           if Value.equal values.(i) value then addr :: acc else acc))

let create_index t ~column =
  match Schema.index_of t.user column with
  | None -> invalid_arg (Printf.sprintf "Snapshot_table.create_index: unknown column %s" column)
  | Some sec_column ->
    let k = String.lowercase_ascii column in
    if not (Hashtbl.mem t.secondaries k) then begin
      let sec = { sec_column; entries = Value_btree.create () } in
      (* Backfill from current contents. *)
      Int_btree.iter t.index (fun base_addr rid ->
          match user_of_rid t rid with
          | Some values ->
            let key = values.(sec_column) in
            let set =
              match Value_btree.find sec.entries key with
              | Some set -> set
              | None ->
                let set = Hashtbl.create 4 in
                Value_btree.insert sec.entries key set;
                set
            in
            Hashtbl.replace set base_addr ()
          | None -> ());
      Hashtbl.replace t.secondaries k sec
    end

let indexed_columns t =
  Hashtbl.fold
    (fun _ sec acc -> (Schema.column t.user sec.sec_column).Schema.name :: acc)
    t.secondaries []
  |> List.sort compare

let has_index t ~column = Hashtbl.mem t.secondaries (String.lowercase_ascii column)

let addrs_of_set set = Hashtbl.fold (fun addr () acc -> addr :: acc) set []

let lookup t ~column value =
  match Hashtbl.find_opt t.secondaries (String.lowercase_ascii column) with
  | None -> invalid_arg (Printf.sprintf "Snapshot_table.lookup: no index on %s" column)
  | Some sec ->
    let addrs =
      match Value_btree.find sec.entries value with
      | Some set -> addrs_of_set set
      | None -> []
    in
    List.sort Addr.compare addrs

let lookup_range t ~column ?lo ?hi () =
  match Hashtbl.find_opt t.secondaries (String.lowercase_ascii column) with
  | None -> invalid_arg (Printf.sprintf "Snapshot_table.lookup_range: no index on %s" column)
  | Some sec ->
    let acc = ref [] in
    Value_btree.iter_range sec.entries ?lo ?hi (fun _ set -> acc := addrs_of_set set @ !acc);
    List.sort Addr.compare !acc

let high_water t =
  match Int_btree.max_binding t.index with
  | Some (k, _) -> k
  | None -> Addr.zero

let exists_in_range t ?lo ?hi ~f () =
  let exception Found in
  try
    Int_btree.iter_range t.index ?lo ?hi (fun _ rid ->
        match user_of_rid t rid with
        | Some values -> if f values then raise Found
        | None -> ());
    false
  with Found -> true

let validate t =
  if Int_btree.length t.index <> Heap.count t.heap then
    Error
      (Printf.sprintf "index has %d entries, heap has %d" (Int_btree.length t.index)
         (Heap.count t.heap))
  else begin
    match Int_btree.validate t.index with
    | Error e -> Error ("index: " ^ e)
    | Ok () ->
      let bad = ref None in
      Int_btree.iter t.index (fun base_addr rid ->
          match Heap.get t.heap rid with
          | None -> bad := Some (Printf.sprintf "index %d points at dead rid" base_addr)
          | Some stored -> (
            match stored.(Schema.arity t.user) with
            | Value.Int b when Int64.to_int b = base_addr -> ()
            | _ -> bad := Some (Printf.sprintf "baseaddr mismatch at %d" base_addr)));
      (match !bad with None -> Ok () | Some e -> Error e)
  end
