(** Snapshot tables — the read-only replica at the snapshot site.

    "The snapshot table itself is stored more traditionally.  The entries
    in the snapshot table are extended to include a field (BaseAddr)
    containing the address of the corresponding entry in the base table."
    Here that field is a hidden [__baseaddr] column, and — "clearly, a
    snapshot index on BaseAddr will accelerate snapshot refresh
    processing" — a B-tree on it drives every lookup and range deletion.

    {!apply} implements the snapshot side of each refresh method
    (Figure 4 for the differential messages):

    - [Entry {addr; prev_qual; values}]: delete every snapshot entry with
      [prev_qual < BaseAddr < addr], then upsert [addr];
    - [Tail {last_qual}]: delete everything with [BaseAddr > last_qual];
    - [Region {lo; hi}]: delete [lo <= BaseAddr <= hi];
    - [Upsert]/[Remove]: exact-address upsert/delete;
    - [Clear]: empty the snapshot (full refresh);
    - [Snaptime ts]: record the new refresh time. *)

open Snapdiff_storage
open Snapdiff_txn
module Version_store = Snapdiff_mvcc.Version_store
module Lease = Snapdiff_lifecycle.Lease
module Horizon = Snapdiff_lifecycle.Horizon

type t

exception Corrupt_snapshot of string
(** A persisted snapshot store failed integrity checks on adoption
    ({!on_pool}); the message names the snapshot and the damage. *)

val create :
  ?page_size:int ->
  ?frames:int ->
  ?version_strategy:Version_store.strategy ->
  ?version_retain:int ->
  ?retain_duration:Clock.ts ->
  name:string ->
  schema:Schema.t ->
  unit ->
  t
(** [schema] is the (already projected) user schema of the snapshot's
    contents.

    [version_strategy] (default [Naive]) and [version_retain] (default 1)
    configure the MVCC epoch ring: each committed framed stream publishes
    an immutable version, the last [version_retain] of which stay readable
    through {!read_txn}.  The defaults are the inert fast path — commits
    mutate in place exactly as before versioning existed.

    [retain_duration] (clock ticks; default none) is the time half of the
    retention policy: versions younger than this against the snapshot's
    own SnapTime are protected from {!vacuum} even once the ring would
    let them go. *)

val on_pool :
  ?snaptime:Clock.ts ->
  ?version_strategy:Version_store.strategy ->
  ?version_retain:int ->
  ?retain_duration:Clock.ts ->
  name:string ->
  schema:Schema.t ->
  Snapdiff_storage.Buffer_pool.t ->
  t
(** Reattach to a persisted snapshot (e.g. a file-backed store at the
    snapshot site after a restart): the BaseAddr index is rebuilt by
    scanning.  Pass the [snaptime] recorded at the last refresh — together
    they allow differential refresh to resume exactly where it left off.
    Raises {!Corrupt_snapshot} on a corrupt [__baseaddr] column. *)

val flush : t -> unit
(** Flush the underlying buffer pool to the store. *)

val name : t -> string

val schema : t -> Schema.t

val snaptime : t -> Clock.ts
(** {!Clock.never} before the first refresh. *)

val count : t -> int

val apply : t -> Refresh_msg.t -> unit
(** Immediate (legacy) application of a raw message. *)

val apply_bytes : t -> bytes -> unit
(** The receiver installed on the network link.  Raw messages are decoded
    and applied immediately; framed messages go through the atomic staging
    path ({!apply_framed}).  Undecodable bytes never raise — they poison
    the in-flight stream (or open a poisoned one), so the corruption is
    detected at the stream's commit marker. *)

(** {1 Atomic stream application}

    Messages of a framed refresh stream are staged per epoch and applied
    only when the stream's {!Refresh_msg.Snaptime} commit marker arrives
    with no sequence gap, truncation, or corruption.  A bad stream is
    discarded wholesale — the previous consistent image stays intact. *)

val apply_framed : t -> Refresh_msg.frame -> unit

val discard_stage : t -> reason:string -> unit
(** Abort the in-flight stream, if any (the sender saw its link die). *)

val epochs_committed : t -> int

val epochs_aborted : t -> int

val last_abort : t -> string option

val last_committed_epoch : t -> int
(** Epoch of the most recently committed framed stream; [-1] before any. *)

val stream_pending : t -> bool

val staged_depth : t -> int
(** Messages currently staged for the in-flight stream. *)

val get : t -> Addr.t -> Tuple.t option
(** Lookup by base address. *)

val contents : t -> (Addr.t * Tuple.t) list
(** (BaseAddr, tuple) in BaseAddr order.  Materializes an O(n) list;
    prefer {!iter}/{!fold} on hot paths. *)

val tuples : t -> Tuple.t list

val iter : t -> (Addr.t -> Tuple.t -> unit) -> unit
(** BaseAddr-ascending traversal with no result allocation (one transient
    user-tuple view per entry).  The callback must not mutate the table. *)

val fold : t -> init:'a -> f:('a -> Addr.t -> Tuple.t -> 'a) -> 'a

val high_water : t -> Addr.t
(** Largest BaseAddr held, {!Addr.zero} if empty (input to the
    tail-suppression optimization). *)

val exists_in_range :
  t -> ?lo:Addr.t -> ?hi:Addr.t -> f:(Tuple.t -> bool) -> unit -> bool
(** Does any entry with BaseAddr in the (inclusive) range satisfy [f]?
    Early-exiting BaseAddr-index walk; used by {!Cascade} to decide whether
    a deletion-covering message matters downstream. *)

(** {1 Secondary indexes}

    "Indices can be defined on a snapshot to accelerate access to its
    contents."  Secondary indexes are maintained through every {!apply}
    and can be created at any time (with backfill). *)

val create_index : t -> column:string -> unit
(** Idempotent.  Raises [Invalid_argument] on an unknown column. *)

val indexed_columns : t -> string list

val has_index : t -> column:string -> bool

val lookup : t -> column:string -> Value.t -> Addr.t list
(** BaseAddrs of entries whose column equals the value, ascending.
    Raises [Invalid_argument] if the column has no index. *)

val lookup_range :
  t -> column:string -> ?lo:Value.t -> ?hi:Value.t -> unit -> Addr.t list

(** {1 Message-stream subscription}

    "[Snapshots] can serve as base tables for other snapshots": the applied
    message stream of this snapshot is exactly a change feed over its
    contents, which {!Cascade} transforms into the refresh stream of a
    derived snapshot. *)

val subscribe : t -> (Refresh_msg.t -> unit) -> unit
(** The callback observes every {e applied} message, immediately before
    its state change lands (pre-apply: {!Cascade} decides from the
    previous state what its child needs).  Framed streams deliver only at
    their commit marker — a staged epoch that aborts (sequence gap,
    truncation, corruption, supersession) is never delivered, so cascade
    observers cannot act on an epoch that never committed. *)

(** {1 Versioned reads}

    Each committed framed stream publishes an immutable version of the
    table into a ring of the last [version_retain] epochs (see {!create}).
    A read transaction pins one version: it observes that epoch's exact
    contents no matter how many refreshes commit meanwhile, never blocks
    a commit, and never waits for one.  A version is reclaimed only once
    it leaves the ring {e and} its last pin is released. *)

type read_txn

val read_txn : ?epoch:int -> t -> read_txn option
(** Pin the given retained epoch (default: the latest version).  [None]
    if that epoch is not retained.  Release with {!release_txn}.  The
    transaction holds a {!Lease.Pinned_read} lease on the snapshot's
    {!horizon} for its lifetime, so vacuum and ring eviction see every
    open reader. *)

val read_txn_exn : ?epoch:int -> t -> read_txn
(** {!read_txn}, but a miss raises {!Version_store.Epoch_not_retained}
    with the requested epoch and the retained range — the surface the
    SQL [AS OF] path reports as a clean error. *)

val release_txn : read_txn -> unit
(** Idempotent.  Releases the version pin and the lease. *)

val txn_pinned : read_txn -> bool

val txn_epoch : read_txn -> int
(** [-1] on the pre-first-commit head. *)

val txn_snaptime : read_txn -> Clock.ts

val txn_get : read_txn -> Addr.t -> Tuple.t option

val txn_count : read_txn -> int

val txn_iter : read_txn -> (Addr.t -> Tuple.t -> unit) -> unit
(** BaseAddr-ascending at the pinned version.  The callback must not
    mutate the table. *)

val txn_fold : read_txn -> init:'a -> f:('a -> Addr.t -> Tuple.t -> 'a) -> 'a

val txn_contents : read_txn -> (Addr.t * Tuple.t) list

val txn_exists_in_range :
  read_txn -> ?lo:Addr.t -> ?hi:Addr.t -> f:(Tuple.t -> bool) -> unit -> bool

val txn_lookup : read_txn -> column:string -> Value.t -> Addr.t list
(** Addresses whose column equals the value at the pinned version,
    ascending.  Secondary indexes track only the live image, so this is
    an index-free scan of the version.  Raises [Invalid_argument] on an
    unknown column (no index required). *)

val version_strategy : t -> Version_store.strategy

val version_retain : t -> int

val versions : t -> Version_store.version_info list
(** The retained ring, newest first. *)

(** {1 Lifecycle}

    The snapshot's retention horizon: epoch leases (one per open
    {!read_txn}) plus the retention policy
    [{retain_epochs; retain_duration}].  The version store's reclamation
    consults it — nothing else holds versions alive. *)

val horizon : t -> Horizon.t

val retention_policy : t -> Horizon.policy

val set_retention_policy : t -> Horizon.policy -> unit
(** Takes effect at the next eviction/vacuum decision.  Note
    [retain_epochs] does not resize the already-created version ring; it
    is the vacuum-facing half of the policy. *)

val vacuum :
  ?older_than:Clock.ts -> ?dry_run:bool -> t -> Version_store.vacuum_stats
(** Reclaim retained versions the horizon no longer needs (see
    {!Version_store.vacuum}); the per-snapshot half of
    [Manager.vacuum]. *)

val validate : t -> (unit, string) result
(** The BaseAddr index and the stored tuples must agree exactly. *)
