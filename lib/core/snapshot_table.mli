(** Snapshot tables — the read-only replica at the snapshot site.

    "The snapshot table itself is stored more traditionally.  The entries
    in the snapshot table are extended to include a field (BaseAddr)
    containing the address of the corresponding entry in the base table."
    Here that field is a hidden [__baseaddr] column, and — "clearly, a
    snapshot index on BaseAddr will accelerate snapshot refresh
    processing" — a B-tree on it drives every lookup and range deletion.

    {!apply} implements the snapshot side of each refresh method
    (Figure 4 for the differential messages):

    - [Entry {addr; prev_qual; values}]: delete every snapshot entry with
      [prev_qual < BaseAddr < addr], then upsert [addr];
    - [Tail {last_qual}]: delete everything with [BaseAddr > last_qual];
    - [Region {lo; hi}]: delete [lo <= BaseAddr <= hi];
    - [Upsert]/[Remove]: exact-address upsert/delete;
    - [Clear]: empty the snapshot (full refresh);
    - [Snaptime ts]: record the new refresh time. *)

open Snapdiff_storage
open Snapdiff_txn

type t

val create :
  ?page_size:int ->
  ?frames:int ->
  name:string ->
  schema:Schema.t ->
  unit ->
  t
(** [schema] is the (already projected) user schema of the snapshot's
    contents. *)

val on_pool :
  ?snaptime:Clock.ts -> name:string -> schema:Schema.t -> Snapdiff_storage.Buffer_pool.t -> t
(** Reattach to a persisted snapshot (e.g. a file-backed store at the
    snapshot site after a restart): the BaseAddr index is rebuilt by
    scanning.  Pass the [snaptime] recorded at the last refresh — together
    they allow differential refresh to resume exactly where it left off.
    Raises [Failure] on a corrupt [__baseaddr] column. *)

val flush : t -> unit
(** Flush the underlying buffer pool to the store. *)

val name : t -> string

val schema : t -> Schema.t

val snaptime : t -> Clock.ts
(** {!Clock.never} before the first refresh. *)

val count : t -> int

val apply : t -> Refresh_msg.t -> unit
(** Immediate (legacy) application of a raw message. *)

val apply_bytes : t -> bytes -> unit
(** The receiver installed on the network link.  Raw messages are decoded
    and applied immediately; framed messages go through the atomic staging
    path ({!apply_framed}).  Undecodable bytes never raise — they poison
    the in-flight stream (or open a poisoned one), so the corruption is
    detected at the stream's commit marker. *)

(** {1 Atomic stream application}

    Messages of a framed refresh stream are staged per epoch and applied
    only when the stream's {!Refresh_msg.Snaptime} commit marker arrives
    with no sequence gap, truncation, or corruption.  A bad stream is
    discarded wholesale — the previous consistent image stays intact. *)

val apply_framed : t -> Refresh_msg.frame -> unit

val discard_stage : t -> reason:string -> unit
(** Abort the in-flight stream, if any (the sender saw its link die). *)

val epochs_committed : t -> int

val epochs_aborted : t -> int

val last_abort : t -> string option

val last_committed_epoch : t -> int
(** Epoch of the most recently committed framed stream; [-1] before any. *)

val stream_pending : t -> bool

val staged_depth : t -> int
(** Messages currently staged for the in-flight stream. *)

val get : t -> Addr.t -> Tuple.t option
(** Lookup by base address. *)

val contents : t -> (Addr.t * Tuple.t) list
(** (BaseAddr, tuple) in BaseAddr order. *)

val tuples : t -> Tuple.t list

val high_water : t -> Addr.t
(** Largest BaseAddr held, {!Addr.zero} if empty (input to the
    tail-suppression optimization). *)

val exists_in_range :
  t -> ?lo:Addr.t -> ?hi:Addr.t -> f:(Tuple.t -> bool) -> unit -> bool
(** Does any entry with BaseAddr in the (inclusive) range satisfy [f]?
    Early-exiting BaseAddr-index walk; used by {!Cascade} to decide whether
    a deletion-covering message matters downstream. *)

(** {1 Secondary indexes}

    "Indices can be defined on a snapshot to accelerate access to its
    contents."  Secondary indexes are maintained through every {!apply}
    and can be created at any time (with backfill). *)

val create_index : t -> column:string -> unit
(** Idempotent.  Raises [Invalid_argument] on an unknown column. *)

val indexed_columns : t -> string list

val has_index : t -> column:string -> bool

val lookup : t -> column:string -> Value.t -> Addr.t list
(** BaseAddrs of entries whose column equals the value, ascending.
    Raises [Invalid_argument] if the column has no index. *)

val lookup_range :
  t -> column:string -> ?lo:Value.t -> ?hi:Value.t -> unit -> Addr.t list

(** {1 Message-stream subscription}

    "[Snapshots] can serve as base tables for other snapshots": the applied
    message stream of this snapshot is exactly a change feed over its
    contents, which {!Cascade} transforms into the refresh stream of a
    derived snapshot. *)

val subscribe : t -> (Refresh_msg.t -> unit) -> unit
(** The callback observes every message passed to {!apply}, before it is
    applied. *)

val validate : t -> (unit, string) result
(** The BaseAddr index and the stored tuples must agree exactly. *)
