open Snapdiff_storage
module Link = Snapdiff_net.Link

type t = {
  downstream : Snapshot_table.t;
  out : Link.t;
  mutable forwarded : int;
}

let table t = t.downstream

let link t = t.out

let messages_forwarded t = t.forwarded

let attach ~upstream ~name ?(restrict = fun _ -> true) ?projection ?link () =
  let parent_schema = Snapshot_table.schema upstream in
  let projection =
    match projection with
    | Some cols -> cols
    | None -> List.map (fun c -> c.Schema.name) (Schema.columns parent_schema)
  in
  let idx =
    Array.of_list
      (List.map
         (fun c ->
           match Schema.index_of parent_schema c with
           | Some i -> i
           | None -> invalid_arg (Printf.sprintf "Cascade.attach: unknown column %s" c))
         projection)
  in
  let project values = Tuple.project_idx values idx in
  let schema = Schema.project parent_schema projection in
  let out =
    match link with
    | Some l -> l
    | None -> Link.create ~name:(Snapshot_table.name upstream ^ "->" ^ name) ()
  in
  let downstream = Snapshot_table.create ~name ~schema () in
  Link.attach out (Snapshot_table.apply_bytes downstream);
  let t = { downstream; out; forwarded = 0 } in
  let send msg =
    if Refresh_msg.is_data msg then t.forwarded <- t.forwarded + 1;
    Link.send out (Refresh_msg.encode msg)
  in
  (* The subscription fires BEFORE the parent applies the message, so the
     parent still holds the previous state: the transformer can decide —
     like the ideal algorithm, from old and new values — whether the child
     is affected at all.  Soundness rests on the cascade invariant
     (child = restriction+projection of parent), so "no parent entry in
     the range used to qualify for the child" implies the child holds
     nothing there. *)
  let child_had addr =
    match Snapshot_table.get upstream addr with
    | Some old -> restrict old
    | None -> false
  in
  let child_has_range lo hi =
    lo <= hi && Snapshot_table.exists_in_range upstream ~lo ~hi ~f:restrict ()
  in
  let rec forward (msg : Refresh_msg.t) =
    match msg with
    | Batch ms ->
      (* Parents unbatch before notifying observers, so this is defensive:
         forward the logical stream, never the transport framing. *)
      List.iter forward ms
    | Upsert { addr; values } ->
      if restrict values then send (Upsert { addr; values = project values })
      else if child_had addr then send (Remove { addr })
    | Entry { addr; prev_qual; values } ->
      let range_matters = child_has_range (prev_qual + 1) (addr - 1) in
      if restrict values then
        if range_matters then
          send (Entry { addr; prev_qual; values = project values })
        else send (Upsert { addr; values = project values })
      else if range_matters || child_had addr then
        (* The entry's range-delete span plus the entry itself. *)
        send (Region { lo = prev_qual + 1; hi = addr })
    | Remove { addr } -> if child_had addr then send msg
    | Region { lo; hi } -> if child_has_range lo hi then send msg
    | Tail { last_qual } ->
      if Snapshot_table.exists_in_range upstream ~lo:(last_qual + 1) ~f:restrict () then
        send msg
    | Clear -> if Snapshot_table.count t.downstream > 0 then send msg
    | Snaptime _ -> send msg
    | Register _ | Request _ -> ()  (* control traffic does not cascade *)
  in
  (* Initial synchronization with the parent's current state. *)
  List.iter
    (fun (addr, values) ->
      if restrict values then send (Refresh_msg.Upsert { addr; values = project values }))
    (Snapshot_table.contents upstream);
  send (Refresh_msg.Snaptime (Snapshot_table.snaptime upstream));
  Snapshot_table.subscribe upstream forward;
  t
