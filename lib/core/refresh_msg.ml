open Snapdiff_storage

type t =
  | Entry of { addr : Addr.t; prev_qual : Addr.t; values : Tuple.t }
  | Tail of { last_qual : Addr.t }
  | Region of { lo : Addr.t; hi : Addr.t }
  | Upsert of { addr : Addr.t; values : Tuple.t }
  | Remove of { addr : Addr.t }
  | Clear
  | Snaptime of Snapdiff_txn.Clock.ts
  | Register of { restrict : string; projection : string list }
  | Request of { snaptime : Snapdiff_txn.Clock.ts }
  | Batch of t list

let rec is_data = function
  | Entry _ | Tail _ | Region _ | Upsert _ | Remove _ -> true
  | Clear | Snaptime _ | Register _ | Request _ -> false
  | Batch ms -> List.exists is_data ms

(* Only the per-entry data messages are worth coalescing; the bracketing
   control messages are rare and, in the case of Snaptime, must stand
   alone so a trailing batch is always flushed before the commit marker. *)
let batchable = function
  | Entry _ | Tail _ | Region _ | Upsert _ | Remove _ -> true
  | Clear | Snaptime _ | Register _ | Request _ | Batch _ -> false

let rec logical_count = function
  | Batch ms -> List.fold_left (fun acc m -> acc + logical_count m) 0 ms
  | _ -> 1

let rec pp ppf = function
  | Entry { addr; prev_qual; values } ->
    Format.fprintf ppf "entry %a (prev %a) %a" Addr.pp addr Addr.pp prev_qual Tuple.pp values
  | Tail { last_qual } -> Format.fprintf ppf "tail (last %a)" Addr.pp last_qual
  | Region { lo; hi } -> Format.fprintf ppf "region [%a, %a]" Addr.pp lo Addr.pp hi
  | Upsert { addr; values } -> Format.fprintf ppf "upsert %a %a" Addr.pp addr Tuple.pp values
  | Remove { addr } -> Format.fprintf ppf "remove %a" Addr.pp addr
  | Clear -> Format.pp_print_string ppf "clear"
  | Snaptime ts -> Format.fprintf ppf "snaptime %d" ts
  | Register { restrict; projection } ->
    Format.fprintf ppf "register restrict=%s project=(%s)" restrict
      (String.concat ", " projection)
  | Request { snaptime } -> Format.fprintf ppf "request snaptime=%d" snaptime
  | Batch ms ->
    Format.fprintf ppf "batch[%d](%a)" (List.length ms)
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp)
      ms

let rec encode msg =
  let buf = Buffer.create 64 in
  (match msg with
  | Entry { addr; prev_qual; values } ->
    Codec.add_u8 buf 1;
    Codec.add_int buf addr;
    Codec.add_int buf prev_qual;
    Codec.add_tuple buf values
  | Tail { last_qual } ->
    Codec.add_u8 buf 2;
    Codec.add_int buf last_qual
  | Region { lo; hi } ->
    Codec.add_u8 buf 3;
    Codec.add_int buf lo;
    Codec.add_int buf hi
  | Upsert { addr; values } ->
    Codec.add_u8 buf 4;
    Codec.add_int buf addr;
    Codec.add_tuple buf values
  | Remove { addr } ->
    Codec.add_u8 buf 5;
    Codec.add_int buf addr
  | Clear -> Codec.add_u8 buf 6
  | Snaptime ts ->
    Codec.add_u8 buf 7;
    Codec.add_int buf ts
  | Register { restrict; projection } ->
    Codec.add_u8 buf 8;
    Codec.add_string buf restrict;
    Codec.add_u32 buf (List.length projection);
    List.iter (Codec.add_string buf) projection
  | Request { snaptime } ->
    Codec.add_u8 buf 9;
    Codec.add_int buf snaptime
  | Batch ms ->
    Codec.add_u8 buf 10;
    Codec.add_u32 buf (List.length ms);
    List.iter
      (fun m ->
        let b = encode m in
        Codec.add_u32 buf (Bytes.length b);
        Buffer.add_bytes buf b)
      ms);
  Buffer.to_bytes buf

let rec decode b =
  let tag, off = Codec.u8 b 0 in
  let msg, off =
    match tag with
    | 1 ->
      let addr, off = Codec.int b off in
      let prev_qual, off = Codec.int b off in
      let values, off = Codec.tuple b off in
      (Entry { addr; prev_qual; values }, off)
    | 2 ->
      let last_qual, off = Codec.int b off in
      (Tail { last_qual }, off)
    | 3 ->
      let lo, off = Codec.int b off in
      let hi, off = Codec.int b off in
      (Region { lo; hi }, off)
    | 4 ->
      let addr, off = Codec.int b off in
      let values, off = Codec.tuple b off in
      (Upsert { addr; values }, off)
    | 5 ->
      let addr, off = Codec.int b off in
      (Remove { addr }, off)
    | 6 -> (Clear, off)
    | 7 ->
      let ts, off = Codec.int b off in
      (Snaptime ts, off)
    | 8 ->
      let restrict, off = Codec.string b off in
      let n, off = Codec.u32 b off in
      let projection = ref [] in
      let off = ref off in
      for _ = 1 to n do
        let s, off' = Codec.string b !off in
        projection := s :: !projection;
        off := off'
      done;
      (Register { restrict; projection = List.rev !projection }, !off)
    | 9 ->
      let snaptime, off = Codec.int b off in
      (Request { snaptime }, off)
    | 10 ->
      let n, off = Codec.u32 b off in
      let ms = ref [] in
      let off = ref off in
      for _ = 1 to n do
        let len, off' = Codec.u32 b !off in
        if off' + len > Bytes.length b then failwith "Refresh_msg.decode: truncated batch";
        ms := decode (Bytes.sub b off' len) :: !ms;
        off := off' + len
      done;
      (Batch (List.rev !ms), !off)
    | _ -> failwith "Refresh_msg.decode: bad tag"
  in
  if off <> Bytes.length b then failwith "Refresh_msg.decode: trailing bytes";
  msg

(* ------------------------------------------------------------------ *)
(* Epoch framing.

   A refresh stream is a sequence of messages that is only meaningful as a
   whole: applying a prefix (link crash), a subsequence (silent loss), or
   a garbled member (corruption) yields a snapshot state that is neither
   the old nor the new consistent image.  Each framed message therefore
   carries the stream's epoch, its position in the stream, and a checksum
   over the payload; the stream commits with its final Snaptime marker.
   The frame tag byte is disjoint from every raw message tag, so framed
   and legacy raw encodings coexist on the same links. *)

type frame = { epoch : int; seq : int; msg : t }

exception Corrupt of string

let frame_tag = 0xF7

(* FNV-1a over the payload, folded with epoch and seq so a frame whose
   header was garbled fails the check even if the payload survived. *)
let checksum ~epoch ~seq payload =
  let h = ref 0x811C9DC5 in
  let feed byte = h := (!h lxor byte) * 0x01000193 land 0xFFFFFFFF in
  Bytes.iter (fun c -> feed (Char.code c)) payload;
  for k = 0 to 7 do
    feed ((epoch lsr (8 * k)) land 0xFF);
    feed ((seq lsr (8 * k)) land 0xFF)
  done;
  !h

let encode_framed ~epoch ~seq msg =
  if epoch < 0 || seq < 0 then invalid_arg "Refresh_msg.encode_framed: negative header";
  let payload = encode msg in
  let buf = Buffer.create (Bytes.length payload + 21) in
  Codec.add_u8 buf frame_tag;
  Codec.add_int buf epoch;
  Codec.add_int buf seq;
  Codec.add_u32 buf (checksum ~epoch ~seq payload);
  Buffer.add_bytes buf payload;
  Buffer.to_bytes buf

let is_framed b = Bytes.length b > 0 && Char.code (Bytes.get b 0) = frame_tag

let decode_framed b =
  try
    let tag, off = Codec.u8 b 0 in
    if tag <> frame_tag then failwith "not a framed message";
    let epoch, off = Codec.int b off in
    let seq, off = Codec.int b off in
    let sum, off = Codec.u32 b off in
    if epoch < 0 || seq < 0 then failwith "negative frame header";
    let payload = Bytes.sub b off (Bytes.length b - off) in
    if checksum ~epoch ~seq payload <> sum then failwith "checksum mismatch";
    { epoch; seq; msg = decode payload }
  with Failure reason | Invalid_argument reason -> raise (Corrupt reason)

let rec equal a b =
  match (a, b) with
  | Entry x, Entry y ->
    x.addr = y.addr && x.prev_qual = y.prev_qual && Tuple.equal x.values y.values
  | Tail x, Tail y -> x.last_qual = y.last_qual
  | Region x, Region y -> x.lo = y.lo && x.hi = y.hi
  | Upsert x, Upsert y -> x.addr = y.addr && Tuple.equal x.values y.values
  | Remove x, Remove y -> x.addr = y.addr
  | Clear, Clear -> true
  | Snaptime x, Snaptime y -> x = y
  | Register x, Register y -> x.restrict = y.restrict && x.projection = y.projection
  | Request x, Request y -> x.snaptime = y.snaptime
  | Batch x, Batch y -> List.length x = List.length y && List.for_all2 equal x y
  | ( ( Entry _ | Tail _ | Region _ | Upsert _ | Remove _ | Clear | Snaptime _
      | Register _ | Request _ | Batch _ ),
      _ ) ->
    false
