(** The differential snapshot refresh scan — the paper's contribution.

    For an {e eager}-mode base table this is exactly Figure 3
    ([BaseRefresh]): scan in address order; transmit a qualified entry if
    its timestamp is newer than [SnapTime] {e or} a modified unqualified
    entry was passed since the last qualified one (the [Deletion] flag);
    each transmission carries the address of the preceding qualified entry,
    which lets the snapshot delete everything between; finish with the
    unconditional tail message and the new [SnapTime].

    For a {e deferred}-mode base table the same scan is combined with the
    Figure 7 fix-up: "for each base table entry, we first update the extra
    fields, if needed.  Then, if necessary, the entry is transmitted."

    [tail_suppression] implements one of the improvements the paper leaves
    as an exercise ("the reader is invited to discover improvements which
    reduce the message traffic"): if the snapshot reports the largest
    [BaseAddr] it holds and that is not above the last qualified entry, the
    tail message cannot delete anything and is skipped. *)

open Snapdiff_storage
open Snapdiff_txn

(** Per-snapshot page-qualification cache, the companion of the base
    table's page summaries: for each page last seen clean it remembers the
    last {e qualifying} address on the page (or that there is none), keyed
    by the summary token it was recorded against.  A token mismatch — the
    page changed, or its summary was rebuilt — silently invalidates the
    entry and the page is decoded again.  The cache is bound to one
    snapshot's restriction: never share a cache between snapshots with
    different [restrict] predicates. *)
module Prune_cache : sig
  type entry = { token : int; page_last_qual : Addr.t option }

  type t = (int, entry) Hashtbl.t

  val create : unit -> t

  val size : t -> int
end

type parallel = {
  par_domains : int;
      (** decode parallelism; clamped to [1 ..] {!Snapdiff_par.Par.max_domains};
          1 = the sequential scan *)
  par_arena : bool;
      (** decode through reused per-domain {!Snapdiff_storage.Decode_arena}s
          (zero-copy path) instead of the allocate-per-record path *)
}
(** How the scan decodes pages.  With [par_domains > 1] the scan runs as
    {e speculative decode + sequential merge}: worker domains pre-decode
    waves of pages into private buffers, and the calling domain merges
    them page by page through the exact sequential state machine, in
    address order — so every subscriber stream, every annotation write,
    and every report counter is byte-for-byte identical to the sequential
    scan's, for any [par_domains] and either [par_arena] setting.
    Workers only read; all fix-up writes, summary/prune-cache updates,
    and message emission stay on the calling domain.  Omitting [parallel]
    (or passing [{par_domains = 1; par_arena = false}]) runs the literal
    pre-existing sequential path. *)

type report = {
  new_snaptime : Clock.ts;
  entries_scanned : int;  (** entries decoded by this scan *)
  entries_skipped : int;  (** entries proven irrelevant by page summaries *)
  pages_decoded : int;
  pages_skipped : int;
  fixup_writes : int;  (** 0 in eager mode *)
  data_messages : int;
  tail_suppressed : bool;
}

type subscriber = {
  sub_snaptime : Clock.ts;  (** the snapshot's current [SnapTime] *)
  sub_restrict : Tuple.t -> bool;  (** compiled [SnapRestrict] *)
  sub_project : Tuple.t -> Tuple.t;
  sub_tail_suppression : Addr.t option;
      (** the snapshot's high-water [BaseAddr]; [None] disables *)
  sub_prune : Prune_cache.t option;
      (** this snapshot's own qualification cache — never shared *)
  sub_xmit : Refresh_msg.t -> unit;  (** this snapshot's own link *)
}
(** One consumer of a group scan: everything a solo {!refresh} takes,
    minus the base table, which the group shares. *)

type group_report = {
  group_pages : int;  (** data pages in the base table *)
  group_pages_decoded : int;  (** physical decodes this scan performed *)
  group_decodes_saved : int;
      (** sum over subscribers of pages each consumed minus
          [group_pages_decoded] — the amortization win *)
  group_fixup_writes : int;
  sub_reports : report array;  (** one per subscriber, in order *)
}

type cursor
(** A suspended group scan: the paper's address-ordered pass reified as a
    resumable state machine.  Everything the monolithic loop kept in local
    state — per-subscriber [LastQual]/[Deletion]/tail-suppression/prune
    bookkeeping and the shared deferred-mode PrevAddr-chain fix-up state —
    lives in the cursor, so the scan can stop at any page boundary (the
    chunked refresh protocol releases its page locks there and lets
    updaters interleave) and later resume exactly where it left off. *)

val start : ?parallel:parallel -> base:Base_table.t -> subscriber array -> cursor
(** Tick the clock once per subscriber (drawing each stream's new
    [SnapTime]; the first tick is the shared [FixupTime]), snapshot the
    data-page count, and position the cursor before page 1.  Nothing is
    scanned or transmitted yet. *)

val pages : cursor -> int
(** Data pages the scan will cover (fixed at {!start}; pages added by
    concurrent inserts are not scanned — the catch-up phase owns them). *)

val next_page : cursor -> int
(** The 1-based page the next {!scan_to} will decode first;
    [pages c + 1] once the scan is complete. *)

val scan_to : cursor -> last_page:int -> unit
(** Advance the scan through page [last_page] (clamped to {!pages}),
    transmitting [Entry] messages exactly as the monolithic pass would.
    The caller must hold locks covering the pages being scanned. *)

val emit_tails : cursor -> unit
(** Close the address-ordered part of every subscriber's stream with its
    unconditional [Tail] message (suppressed per subscriber under the
    tail-suppression rule).  Idempotent.  After this, the chunked
    refresh protocol may append per-subscriber catch-up messages
    ([Upsert]/[Remove] replayed from the WAL tail) before {!finish}. *)

val finish : cursor -> group_report
(** Complete the refresh: scan any remaining pages, {!emit_tails} if not
    yet done, send each subscriber's [Snaptime] commit marker, and build
    the report.  [refresh_group base subs = finish (start ~base subs)] —
    the one-shot form is literally the cursor driven without suspension,
    so the two can never drift apart. *)

val refresh_group :
  ?parallel:parallel -> base:Base_table.t -> subscriber array -> group_report
(** One page-pruned, address-ordered pass over [base], demultiplexed into
    per-subscriber streams.  Each subscriber keeps its own [SnapTime],
    restriction, projection, [Deletion] flag, qualification cache, and
    tail-suppression cursor; a page is decoded at most once per scan —
    decoded iff {e any} subscriber's summary/prune conditions require it,
    then fed to exactly the subscribers that need it — and in deferred
    mode the Figure-7 fix-up writes happen once per scan.

    The clock ticks once per subscriber, in array order, and the first
    tick is the shared [FixupTime]; consequently subscriber [i]'s stream
    (including its trailing [Snaptime]) is byte-identical to the [i]-th
    of a sequence of solo {!refresh} calls over the same table in the
    same order.  Fix-up writes are charged to subscriber 0's report, as
    the first solo refresher's pass would have performed all of them.
    The caller holds the table lock; [sub_xmit] exceptions propagate, so
    callers wanting failure isolation must absorb link errors inside the
    subscriber's own [sub_xmit]. *)

val refresh :
  ?tail_suppression:Addr.t option ->
  ?prune:Prune_cache.t ->
  ?parallel:parallel ->
  base:Base_table.t ->
  snaptime:Clock.ts ->
  restrict:(Tuple.t -> bool) ->
  project:(Tuple.t -> Tuple.t) ->
  xmit:(Refresh_msg.t -> unit) ->
  unit ->
  report
(** [restrict] and [project] operate on user-schema tuples (they are the
    compiled [SnapRestrict] and projection).  [tail_suppression] is the
    snapshot's current high-water [BaseAddr] ([None] disables the
    optimization, reproducing the paper's algorithm verbatim).  The caller
    holds the table lock.

    With [prune], the scan runs page-wise and skips decoding any page
    whose {!Base_table.page_summary} plus cache entry prove the decode
    would transmit nothing and write nothing: [sum_max_ts <= snaptime]
    (nothing changed), in deferred mode no PrevAddr-chain anomaly at the
    page boundary ([ExpectPrev = LastAddr] and [sum_first_prev =
    ExpectPrev]), and a token-valid cache entry supplying the page's last
    qualifying address so [LastQual] — hence the receiver's
    delete-between semantics — advances exactly as an unpruned scan
    would.  A page whose cache entry says it holds qualifying entries is
    never skipped while the [Deletion] flag is pending (the next
    qualifying entry must be transmitted).  Every page the scan does
    decode gets its summary recorded and its cache entry refreshed, so
    the first pruned refresh pays one full scan and subsequent ones cost
    O(changed pages).  Skipping never changes the transmitted stream or
    the resulting annotations: pruned and unpruned refresh are
    message-for-message identical. *)
