module Link = Snapdiff_net.Link
module Change_log = Snapdiff_changelog.Change_log

type policy =
  | Buffer
  | Reject

type t = {
  link : Link.t;
  policy : policy;
  queue : Refresh_msg.t Queue.t;
  mutable sent : int;
  mutable rejected : int;
}

let push t msg =
  if Queue.is_empty t.queue && Link.try_send t.link (Refresh_msg.encode msg) then
    t.sent <- t.sent + 1
  else begin
    match t.policy with
    | Buffer -> Queue.add msg t.queue
    | Reject -> t.rejected <- t.rejected + 1
  end

let flush t =
  let made_progress = ref true in
  while (not (Queue.is_empty t.queue)) && !made_progress do
    let msg = Queue.peek t.queue in
    if Link.try_send t.link (Refresh_msg.encode msg) then begin
      ignore (Queue.pop t.queue : Refresh_msg.t);
      t.sent <- t.sent + 1
    end
    else made_progress := false
  done

let attach ~base ~link ~restrict ~project ?(policy = Buffer) () =
  let t = { link; policy; queue = Queue.create (); sent = 0; rejected = 0 } in
  ignore
    (Base_table.subscribe base (fun change ->
         let addr, before, after =
           match change with
           | Change_log.Insert (addr, v) -> (addr, None, Some v)
           | Change_log.Delete (addr, old) -> (addr, Some old, None)
           | Change_log.Update (addr, old, v) -> (addr, Some old, Some v)
         in
         match Ideal.decide ~restrict before after with
         | `Upsert v -> push t (Refresh_msg.Upsert { addr; values = project v })
         | `Remove -> push t (Refresh_msg.Remove { addr })
         | `Nothing -> ())
      : Base_table.subscription);
  t

let sent t = t.sent
let pending t = Queue.length t.queue
let rejected t = t.rejected
