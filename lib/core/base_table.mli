(** Annotated base tables.

    A base table is a heap of user tuples extended with the two annotation
    fields of {!Annotations}, maintained in one of the two disciplines the
    paper develops:

    - {b Eager} ("Associating Empty Regions with Actual Entries"): every
      insert/update/delete keeps [__prevaddr]/[__timestamp] exact.  Inserts
      and deletes touch the *successor* entry too, which is the extra
      base-operation cost (and the concurrency hazard) the paper
      attributes to this scheme.
    - {b Deferred} ("Batch Maintenance of Empty Regions and Timestamps"):
      operations are oblivious to snapshots — inserts store NULL
      annotations, updates NULL the timestamp, deletes just delete — and
      the fix-up pass run during refresh ({!Fixup}) restores the fields.
      "It is the snapshot refresh operations which *should* bear the costs
      associated with maintaining the snapshot."

    The table optionally publishes exact old/new change records to
    subscribers (feeding the *ideal* algorithm's change log and ASAP
    propagation) and writes conventional WAL records (feeding the
    log-based alternative and crash recovery).  Those are competing
    mechanisms from the paper's "alternative refresh methods" section —
    a production system would enable only one. *)

open Snapdiff_storage
open Snapdiff_txn

type mode = Eager | Deferred

type t

val create :
  ?mode:mode ->
  ?page_size:int ->
  ?frames:int ->
  ?wal:Snapdiff_wal.Wal.t ->
  name:string ->
  clock:Clock.t ->
  Schema.t ->
  t
(** [create ~name ~clock user_schema] builds an empty annotated table over
    a private in-memory store.  [mode] defaults to [Deferred] (the paper's
    final algorithm).  The user schema must not already contain annotation
    columns.

    When [wal] is file-backed with group commit, each mutation's
    autocommit is acknowledged before its fsync: it is durable only once
    its group-commit window fills or [Wal.sync] runs — see
    {!Snapdiff_wal.Wal.durable_end_lsn} for the precise contract. *)

val on_pool :
  ?mode:mode ->
  ?wal:Snapdiff_wal.Wal.t ->
  name:string ->
  clock:Clock.t ->
  Snapdiff_storage.Buffer_pool.t ->
  Snapdiff_storage.Schema.t ->
  t
(** Attach to an existing (possibly populated, possibly file-backed)
    store: existing entries — with whatever annotations they carry — are
    adopted as-is, so a durable base table survives restarts and its next
    differential refresh proceeds from the persisted annotations.  Pass
    the same user schema the table was created with. *)

val flush : t -> unit
(** Flush the underlying buffer pool to the store. *)

val pool : t -> Snapdiff_storage.Buffer_pool.t
(** The table's buffer pool — what a fuzzy checkpoint walks. *)

val name : t -> string

val mode : t -> mode

val wal : t -> Snapdiff_wal.Wal.t option

val clock : t -> Clock.t

val user_schema : t -> Schema.t

val stored_schema : t -> Schema.t
(** User schema + annotation columns (what {!iter_stored} yields). *)

val count : t -> int

val mutations : t -> int
(** Total inserts+updates+deletes since creation (cost-model input). *)

type subscription
(** Handle to an observer registration, for {!unsubscribe}. *)

val subscribe : t -> (Snapdiff_changelog.Change_log.change -> unit) -> subscription
(** Change records carry {b user} tuples (annotations stripped). *)

val unsubscribe : t -> subscription -> unit
(** Detach a previously registered observer.  Unknown handles are
    ignored. *)

(** {1 Operations} (user-schema tuples) *)

val insert : t -> Tuple.t -> Addr.t

val update : t -> Addr.t -> Tuple.t -> unit
(** Raises [Not_found] if no live entry at the address. *)

val delete : t -> Addr.t -> unit
(** Raises [Not_found] if no live entry at the address. *)

val get : t -> Addr.t -> Tuple.t option

val get_annotations : t -> Addr.t -> Annotations.t option

val to_user_list : t -> (Addr.t * Tuple.t) list
(** Live entries in address order. *)

(** {1 Scan-level access} (refresh algorithms and fix-up) *)

val iter_stored : t -> (Addr.t -> Tuple.t -> unit) -> unit
(** Address-order scan of stored (annotated) tuples.  The callback may call
    {!set_stored} on the entry it is visiting. *)

(** {2 Page summaries}

    Per-page acceleration metadata for the pruned refresh scan: a summary
    is recorded by a scan that just decoded the whole page (so it is exact
    by construction), and removed — never patched — by any mutation that
    touches the page.  A present summary therefore {e proves} facts about
    the page: its live-entry count and address bounds, the stored PrevAddr
    of its first live entry, and the maximum annotation timestamp, with no
    NULL annotations anywhere on the page (pages with NULLs are simply not
    summarized).  Summaries live beside the buffer pool, like the heap's
    free-space map, so frame eviction does not lose them; they are {e not}
    persisted, so a table adopted with {!on_pool} starts bare and the
    first post-restart scan rebuilds them. *)

type page_summary = {
  sum_live : int;  (** live entries on the page *)
  sum_first_live : Addr.t;  (** lowest live address; meaningless if empty *)
  sum_last_live : Addr.t;  (** highest live address; meaningless if empty *)
  sum_first_prev : Addr.t;
      (** stored PrevAddr annotation of the first live entry — the hook for
          detecting a PrevAddr-chain anomaly at the page boundary *)
  sum_max_ts : Clock.ts;  (** max annotation timestamp on the page *)
  sum_token : int;
      (** identity of this summary's content, unique across table
          instances; a cached token that still matches proves the page is
          unchanged since the cache entry was made *)
}

val data_pages : t -> int

val page_summary : t -> int -> page_summary option

val record_page_summary :
  t ->
  page:int ->
  live:int ->
  first_live:Addr.t ->
  last_live:Addr.t ->
  first_prev:Addr.t ->
  max_ts:Clock.ts ->
  int
(** Install the summary a full decode of [page] just established and
    return its token.  If an identical summary is already recorded its
    existing token is returned unchanged, so concurrent snapshots'
    qualification caches survive each other's refreshes. *)

val summarized_pages : t -> int
(** How many data pages currently carry a summary (observability). *)

val iter_page_stored : t -> page:int -> (Addr.t -> Tuple.t -> unit) -> unit
(** {!iter_stored} restricted to one data page (see {!Heap.iter_page}). *)

val iter_page_stored_arena :
  t -> arena:Decode_arena.t -> page:int -> (Addr.t -> Tuple.t -> unit) -> unit
(** {!iter_page_stored} through a reused {!Decode_arena} — same sequence,
    near-zero allocation (see {!Heap.iter_page_arena}).  The parallel
    scan gives each worker domain its own arena. *)

val set_stored : t -> Addr.t -> Tuple.t -> unit
(** Raw annotated-tuple write: used by the fix-up pass to restore
    annotation fields.  Does not tick the clock, fire observers, or write
    WAL (annotation maintenance is not a user change). *)

val last_addr : t -> Addr.t
(** Address of the last live entry, or {!Addr.zero} if empty. *)

val lock_resource : t -> Lock.resource
(** The table-level lock resource ("we must obtain a table level lock on
    the base table during the fix up (and refresh) procedures"). *)

val page_lock_resource : t -> int -> Lock.resource
(** The lock resource for one data page — the granule of the chunked
    refresh protocol: the scan holds short page S/X locks under a table
    IS/IX intention lock, while updaters take table IX + page IX + entry
    X, so a refresh only stalls updaters targeting the pages currently
    under the cursor. *)
