(** Annotated base tables.

    A base table is a heap of user tuples extended with the two annotation
    fields of {!Annotations}, maintained in one of the two disciplines the
    paper develops:

    - {b Eager} ("Associating Empty Regions with Actual Entries"): every
      insert/update/delete keeps [__prevaddr]/[__timestamp] exact.  Inserts
      and deletes touch the *successor* entry too, which is the extra
      base-operation cost (and the concurrency hazard) the paper
      attributes to this scheme.
    - {b Deferred} ("Batch Maintenance of Empty Regions and Timestamps"):
      operations are oblivious to snapshots — inserts store NULL
      annotations, updates NULL the timestamp, deletes just delete — and
      the fix-up pass run during refresh ({!Fixup}) restores the fields.
      "It is the snapshot refresh operations which *should* bear the costs
      associated with maintaining the snapshot."

    The table optionally publishes exact old/new change records to
    subscribers (feeding the *ideal* algorithm's change log and ASAP
    propagation) and writes conventional WAL records (feeding the
    log-based alternative and crash recovery).  Those are competing
    mechanisms from the paper's "alternative refresh methods" section —
    a production system would enable only one. *)

open Snapdiff_storage
open Snapdiff_txn

type mode = Eager | Deferred

type t

val create :
  ?mode:mode ->
  ?page_size:int ->
  ?frames:int ->
  ?wal:Snapdiff_wal.Wal.t ->
  name:string ->
  clock:Clock.t ->
  Schema.t ->
  t
(** [create ~name ~clock user_schema] builds an empty annotated table over
    a private in-memory store.  [mode] defaults to [Deferred] (the paper's
    final algorithm).  The user schema must not already contain annotation
    columns. *)

val on_pool :
  ?mode:mode ->
  ?wal:Snapdiff_wal.Wal.t ->
  name:string ->
  clock:Clock.t ->
  Snapdiff_storage.Buffer_pool.t ->
  Snapdiff_storage.Schema.t ->
  t
(** Attach to an existing (possibly populated, possibly file-backed)
    store: existing entries — with whatever annotations they carry — are
    adopted as-is, so a durable base table survives restarts and its next
    differential refresh proceeds from the persisted annotations.  Pass
    the same user schema the table was created with. *)

val flush : t -> unit
(** Flush the underlying buffer pool to the store. *)

val name : t -> string

val mode : t -> mode

val wal : t -> Snapdiff_wal.Wal.t option

val clock : t -> Clock.t

val user_schema : t -> Schema.t

val stored_schema : t -> Schema.t
(** User schema + annotation columns (what {!iter_stored} yields). *)

val count : t -> int

val mutations : t -> int
(** Total inserts+updates+deletes since creation (cost-model input). *)

type subscription
(** Handle to an observer registration, for {!unsubscribe}. *)

val subscribe : t -> (Snapdiff_changelog.Change_log.change -> unit) -> subscription
(** Change records carry {b user} tuples (annotations stripped). *)

val unsubscribe : t -> subscription -> unit
(** Detach a previously registered observer.  Unknown handles are
    ignored. *)

(** {1 Operations} (user-schema tuples) *)

val insert : t -> Tuple.t -> Addr.t

val update : t -> Addr.t -> Tuple.t -> unit
(** Raises [Not_found] if no live entry at the address. *)

val delete : t -> Addr.t -> unit
(** Raises [Not_found] if no live entry at the address. *)

val get : t -> Addr.t -> Tuple.t option

val get_annotations : t -> Addr.t -> Annotations.t option

val to_user_list : t -> (Addr.t * Tuple.t) list
(** Live entries in address order. *)

(** {1 Scan-level access} (refresh algorithms and fix-up) *)

val iter_stored : t -> (Addr.t -> Tuple.t -> unit) -> unit
(** Address-order scan of stored (annotated) tuples.  The callback may call
    {!set_stored} on the entry it is visiting. *)

val set_stored : t -> Addr.t -> Tuple.t -> unit
(** Raw annotated-tuple write: used by the fix-up pass to restore
    annotation fields.  Does not tick the clock, fire observers, or write
    WAL (annotation maintenance is not a user change). *)

val last_addr : t -> Addr.t
(** Address of the last live entry, or {!Addr.zero} if empty. *)

val lock_resource : t -> Lock.resource
(** The table-level lock resource ("we must obtain a table level lock on
    the base table during the fix up (and refresh) procedures"). *)
