open Snapdiff_storage
open Snapdiff_txn
module Expr = Snapdiff_expr.Expr
module Eval = Snapdiff_expr.Eval
module Typecheck = Snapdiff_expr.Typecheck
module Selectivity = Snapdiff_expr.Selectivity
module Change_log = Snapdiff_changelog.Change_log
module Link = Snapdiff_net.Link
module Model = Snapdiff_analysis.Model
module Wal = Snapdiff_wal.Wal
module Recovery = Snapdiff_wal.Recovery
module Wal_checkpoint = Snapdiff_wal.Checkpoint
module Metrics = Snapdiff_obs.Metrics
module Trace = Snapdiff_obs.Trace
module Lease = Snapdiff_lifecycle.Lease
module Horizon = Snapdiff_lifecycle.Horizon
module Version_store = Snapdiff_mvcc.Version_store

let m_refreshes = Metrics.counter Metrics.global "refresh.refreshes"
let m_attempts = Metrics.counter Metrics.global "refresh.attempts"
let m_aborted_streams = Metrics.counter Metrics.global "refresh.aborted_streams"
let m_escalations = Metrics.counter Metrics.global "refresh.escalations"
let m_failures = Metrics.counter Metrics.global "refresh.failures"
let m_data_messages = Metrics.counter Metrics.global "refresh.data_messages"
let m_entries_scanned = Metrics.counter Metrics.global "refresh.entries_scanned"
let h_duration = Metrics.histogram Metrics.global "refresh.duration_us"
let h_backoff = Metrics.histogram Metrics.global "refresh.backoff_us"
let h_group_size = Metrics.histogram Metrics.global "refresh.group_size"
let h_chunks = Metrics.histogram Metrics.global "refresh.chunks"
let h_catchup_records = Metrics.histogram Metrics.global "refresh.catchup_records"
let h_lock_hold = Metrics.histogram Metrics.global "refresh.lock_hold_us"

let log_src = Logs.Src.create "snapdiff.refresh" ~doc:"snapshot refresh events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type method_spec =
  | Auto
  | Full
  | Differential
  | Ideal
  | Log_based

type method_used = Used_full | Used_differential | Used_ideal | Used_log_based

let method_name = function
  | Used_full -> "full"
  | Used_differential -> "differential"
  | Used_ideal -> "ideal"
  | Used_log_based -> "log-based"

type refresh_report = {
  snapshot : string;
  method_used : method_used;
  new_snaptime : Clock.ts;
  entries_scanned : int;
  entries_skipped : int;  (* proven irrelevant by page summaries, not decoded *)
  pages_decoded : int;  (* pages this stream consumed; differential scans only *)
  fixup_writes : int;
  data_messages : int;
  link_messages : int;  (* physical frames *)
  link_logical_messages : int;  (* protocol messages carried by those frames *)
  link_bytes : int;
  tail_suppressed : bool;
  log_records_scanned : int;
  attempts : int;  (* stream attempts, including the one that committed *)
  aborts : int;  (* attempts that failed or whose stream was discarded *)
  escalated : bool;  (* degraded to full refresh after repeated failures *)
  backoff_us : float;  (* simulated retry backoff accumulated *)
  group_size : int;  (* subscribers sharing the scan that served this; 1 = solo *)
  chunks : int;  (* page-range chunks the scan was split into; 0 = monolithic *)
  catchup_records : int;  (* net-changed addresses replayed from the WAL tail *)
  max_lock_hold_us : float;  (* longest single lock-hold window (chunk or catch-up) *)
}

(* Retry discipline for refresh streams.  Backoff is simulated time
   (charged to the link's transfer clock), not wall-clock sleep. *)
type retry_policy = {
  max_attempts : int;
  backoff_us : float;  (* first retry's base delay *)
  backoff_multiplier : float;
  max_backoff_us : float;
  jitter : float;  (* fraction of the delay randomized, in [0, 1] *)
  escalate_after : int;  (* consecutive failures before forcing full refresh *)
}

let default_retry_policy =
  {
    max_attempts = 8;
    backoff_us = 1_000.0;
    backoff_multiplier = 2.0;
    max_backoff_us = 1_000_000.0;
    jitter = 0.5;
    escalate_after = 3;
  }

exception Unknown_table of string
exception Unknown_snapshot of string
exception Duplicate_name of string
exception Bad_definition of string

exception Refresh_failed of { snapshot : string; attempts : int; reason : string }

type base_state = {
  base_table : Base_table.t;
  mutable capture : (Change_log.t * Base_table.subscription) option;
}

type snapshot = {
  snap_name : string;
  base_name : string;
  restrict_expr : Expr.t;
  restrict : Tuple.t -> bool;
  projection : string list;
  project : Tuple.t -> Tuple.t;
  table : Snapshot_table.t;
  link : Link.t;
  request_link : Link.t;  (* snapshot -> base control path *)
  mutable spec : method_spec;  (* the fleet scheduler re-routes per refresh *)
  tail_suppression : bool;
  prune : Differential.Prune_cache.t option;  (* page-qualification cache *)
  mutable selectivity : float;
  mutable cursor_seq : Change_log.seq;
  mutable cursor_lsn : Wal.lsn;
  mutable cursor_lease : Lease.t option;  (* log-based only: pins cursor_lsn *)
  mutable mutations_at_refresh : int;
  mutable next_epoch : int;  (* every stream attempt gets a fresh epoch *)
  mutable history : refresh_report list;  (* committed refreshes, newest first *)
}

(* Committed-refresh history kept per snapshot for the scheduler's churn
   estimates; bounded so a long-lived fleet cannot leak. *)
let history_cap = 32

let note_report s report =
  s.history <- report :: List.filteri (fun i _ -> i < history_cap - 1) s.history

type t = {
  bases : (string, base_state) Hashtbl.t;
  snapshots : (string, snapshot) Hashtbl.t;
  txns : Txn.manager;
  mutable retry : retry_policy;
  mutable batch : int;  (* flush threshold for batched transport; <= 1 = off *)
  mutable chunk_entries : int;  (* scan chunk size; max_int = monolithic *)
  mutable domains : int;  (* refresh decode parallelism; 1 = sequential *)
  mutable arena : bool option;  (* decode-arena override; None = (domains > 1) *)
  mutable on_chunk : (unit -> unit) option;  (* interleave point between chunks *)
  rng : Snapdiff_util.Rng.t;  (* backoff jitter, selectivity sampling *)
  (* One retention horizon per WAL (keyed by physical identity — several
     bases may share one log).  Every consumer of historical log state —
     a chunked scan's catch-up, a log-based cursor, a running checkpoint —
     holds a lease here, and the horizon's floor is the only truncation
     gate: neither [checkpoint] nor [vacuum] may discard records below it. *)
  mutable wal_horizons : (Wal.t * Horizon.t) list;
}

let key = String.lowercase_ascii

let create ?(retry = default_retry_policy) ?(seed = 0x5EED) ?(batch_size = 1)
    ?(chunk_entries = max_int) ?(domains = 1) ?arena () =
  {
    bases = Hashtbl.create 8;
    snapshots = Hashtbl.create 8;
    txns = Txn.create_manager ();
    retry;
    batch = max 1 batch_size;
    chunk_entries = max 1 chunk_entries;
    domains = max 1 domains;
    arena;
    on_chunk = None;
    rng = Snapdiff_util.Rng.create seed;
    wal_horizons = [];
  }

let txn_manager t = t.txns

let retry_policy t = t.retry

let set_retry_policy t p = t.retry <- p

let batch_size t = t.batch

let set_batch_size t n = t.batch <- max 1 n

let chunk_entries t = t.chunk_entries

let set_chunk_entries t n = t.chunk_entries <- max 1 n

let domains t = t.domains

let set_domains ?arena t n =
  t.domains <- max 1 n;
  match arena with None -> () | Some _ -> t.arena <- arena

(* The [Differential.parallel] the next refresh scan should use; [None]
   when the configuration is the default — that keeps [domains = 1]
   (without an arena override) on the literal pre-existing code path. *)
let parallel_opt t =
  let arena = Option.value t.arena ~default:(t.domains > 1) in
  if t.domains <= 1 && not arena then None
  else Some { Differential.par_domains = t.domains; par_arena = arena }

let set_chunk_hook t f = t.on_chunk <- f

let register_base t table =
  let k = key (Base_table.name table) in
  if Hashtbl.mem t.bases k then raise (Duplicate_name (Base_table.name table));
  Hashtbl.replace t.bases k { base_table = table; capture = None }

let snapshots_on t base_name =
  Hashtbl.fold
    (fun _ s acc -> if key s.base_name = key base_name then s.snap_name :: acc else acc)
    t.snapshots []

let unregister_base t name =
  if not (Hashtbl.mem t.bases (key name)) then raise (Unknown_table name);
  (match snapshots_on t name with
  | [] -> ()
  | s :: _ -> raise (Bad_definition (Printf.sprintf "snapshot %s depends on table %s" s name)));
  Hashtbl.remove t.bases (key name)

let base_state t name =
  match Hashtbl.find_opt t.bases (key name) with
  | Some b -> b
  | None -> raise (Unknown_table name)

let base t name = (base_state t name).base_table

let base_names t = Hashtbl.fold (fun _ b acc -> Base_table.name b.base_table :: acc) t.bases []

let snapshot t name =
  match Hashtbl.find_opt t.snapshots (key name) with
  | Some s -> s
  | None -> raise (Unknown_snapshot name)

let snapshot_names t = Hashtbl.fold (fun _ s acc -> s.snap_name :: acc) t.snapshots []

let snapshot_table t name = (snapshot t name).table

(* --- Versioned reads ------------------------------------------------------ *)

let read_txn ?epoch t name = Snapshot_table.read_txn ?epoch (snapshot t name).table

let read_txn_exn ?epoch t name = Snapshot_table.read_txn_exn ?epoch (snapshot t name).table

let with_read_txn ?epoch t name f =
  match Snapshot_table.read_txn ?epoch (snapshot t name).table with
  | None -> None
  | Some txn ->
    Fun.protect ~finally:(fun () -> Snapshot_table.release_txn txn) (fun () -> Some (f txn))

let snapshot_versions t name = Snapshot_table.versions (snapshot t name).table

let snapshot_version_strategy t name = Snapshot_table.version_strategy (snapshot t name).table

let snapshot_base t name = (snapshot t name).base_name

let snapshot_method t name = (snapshot t name).spec

let snapshot_restrict t name = (snapshot t name).restrict_expr

let snapshot_link t name = (snapshot t name).link

let snapshot_request_link t name = (snapshot t name).request_link

let selectivity_estimate t name = (snapshot t name).selectivity

let change_log t name = Option.map fst (base_state t name).capture

let ensure_capture t base_name =
  let st = base_state t base_name in
  match st.capture with
  | Some (log, _) -> log
  | None ->
    let log = Change_log.create () in
    let sub =
      Base_table.subscribe st.base_table (fun c ->
          ignore (Change_log.append log c : Change_log.seq))
    in
    st.capture <- Some (log, sub);
    log

let drop_capture t base_name =
  let st = base_state t base_name in
  match st.capture with
  | None -> ()
  | Some (_, sub) ->
    Base_table.unsubscribe st.base_table sub;
    st.capture <- None

(* Observed distinct-update activity is approximated by the operation count
   since the snapshot's last refresh, capped at 1. *)
let observed_update_fraction base s =
  let n = Base_table.count base in
  if n = 0 then 0.0
  else
    Float.min 1.0
      (float_of_int (Base_table.mutations base - s.mutations_at_refresh) /. float_of_int n)

let estimate t name =
  let s = snapshot t name in
  let b = base t s.base_name in
  let n = Base_table.count b in
  let q = s.selectivity in
  let u = observed_update_fraction b s in
  let full = Model.full_messages ~n ~q in
  let diff = Model.differential_messages ~n ~q ~u () in
  (full, diff)

let estimate_refresh_messages t name =
  let full, diff = estimate t name in
  (`Full full, `Differential diff)

let with_table_lock t base mode f =
  let txn = Txn.begin_txn t.txns in
  match
    Txn.lock txn (Base_table.lock_resource base) mode;
    f ()
  with
  | v ->
    ignore (Txn.commit txn : int list);
    v
  | exception e ->
    (* A failed refresh attempt must not count as a committed transaction:
       abort releases the same locks but keeps the commit/abort accounting
       honest and runs any registered undo actions. *)
    if Txn.is_active txn then ignore (Txn.abort txn : int list);
    raise e

let blank_report s method_used =
  {
    snapshot = s.snap_name;
    method_used;
    new_snaptime = Clock.never;
    entries_scanned = 0;
    entries_skipped = 0;
    pages_decoded = 0;
    fixup_writes = 0;
    data_messages = 0;
    link_messages = 0;
    link_logical_messages = 0;
    link_bytes = 0;
    tail_suppressed = false;
    log_records_scanned = 0;
    attempts = 1;
    aborts = 0;
    escalated = false;
    backoff_us = 0.0;
    group_size = 1;
    chunks = 0;
    catchup_records = 0;
    max_lock_hold_us = 0.0;
  }

(* --- Chunked concurrent refresh ------------------------------------------ *)

exception Catchup_truncated
(* Internal: the WAL tail the catch-up phase needs was truncated while the
   chunked scan ran.  The attempt cannot be made consistent; the caller
   escalates to a monolithic full refresh, which needs no log. *)

type chunk_stats = {
  cs_chunks : int;
  cs_catchup : int;  (* net-changed addresses replayed, per subscriber *)
  cs_max_hold_us : float;  (* longest single lock-hold window *)
}

let no_chunk_stats = { cs_chunks = 0; cs_catchup = 0; cs_max_hold_us = 0.0 }

(* Entries-per-chunk is the user-facing knob; convert it to whole pages
   using the table's current average page fill. *)
let chunk_pages_for t b ~total =
  if total = 0 then 1
  else max 1 (t.chunk_entries / max 1 (Base_table.count b / max 1 total))

(* Walk pages [1..total] in chunks: each chunk's pages are locked in
   [page_mode] before the previous chunk's are released (lock coupling —
   no updater can slip between the cursor's footsteps), the previous
   chunk's hold time is observed, and the interleave hook runs so
   cooperative updaters can act on the released pages.  [scan ~last_page]
   advances the caller's cursor through the newly locked range.  The
   enclosing table intention lock stays held throughout. *)
let chunk_walk t txn b ~page_mode ~total ~observe_hold ~scan =
  let yield () = match t.on_chunk with Some f -> f () | None -> () in
  let per_chunk = chunk_pages_for t b ~total in
  let lock_pages lo hi =
    for p = lo to hi do
      Txn.lock txn (Base_table.page_lock_resource b p) page_mode
    done
  in
  let unlock_pages lo hi =
    for p = lo to hi do
      ignore (Txn.unlock txn (Base_table.page_lock_resource b p) : int list)
    done
  in
  let chunks = ref 0 in
  let prev = ref None in
  let next = ref 1 in
  while !next <= total do
    let lo = !next in
    let hi = min total (lo + per_chunk - 1) in
    let t0 = Trace.now_us () in
    lock_pages lo hi;
    (match !prev with
    | Some (plo, phi, pt0) ->
      unlock_pages plo phi;
      observe_hold pt0;
      yield ()
    | None -> ());
    Trace.with_span "refresh.chunk"
      ~attrs:
        [ ("table", Base_table.name b); ("pages", Printf.sprintf "%d-%d" lo hi) ]
      (fun () -> scan ~last_page:hi);
    incr chunks;
    prev := Some (lo, hi, t0);
    next := hi + 1
  done;
  (match !prev with
  | Some (plo, phi, pt0) ->
    unlock_pages plo phi;
    observe_hold pt0;
    yield ()
  | None -> ());
  !chunks

let wal_horizon t wal =
  match List.find_opt (fun (w, _) -> w == wal) t.wal_horizons with
  | Some (_, h) -> h
  | None ->
    let h = Horizon.create () in
    t.wal_horizons <- (wal, h) :: t.wal_horizons;
    h

(* Log-based cursor leases.  A snapshot refreshing from the WAL keeps a
   [Log_cursor] lease at its cursor so truncation can never strand it on
   the forced-full fallback; the lease tracks every cursor advance and is
   dropped when the snapshot leaves the log-based method (or the catalog). *)
let set_cursor_lsn s lsn =
  s.cursor_lsn <- lsn;
  Option.iter (fun l -> Lease.move_lsn l lsn) s.cursor_lease

let release_cursor_lease s =
  Option.iter Lease.release s.cursor_lease;
  s.cursor_lease <- None

let sync_cursor_lease t s =
  match (s.spec, Base_table.wal (base t s.base_name)) with
  | Log_based, Some wal -> (
    match s.cursor_lease with
    | Some l when Lease.live l -> Lease.move_lsn l s.cursor_lsn
    | _ ->
      s.cursor_lease <-
        Some
          (Horizon.acquire (wal_horizon t wal) ~kind:Lease.Log_cursor
             ~holder:("cursor:" ^ s.snap_name) ~lsn:s.cursor_lsn ()))
  | _ -> release_cursor_lease s

(* Committed net changes to [b] since the LSN captured at scan start.
   Skipped entirely (no log scan) when the per-table LSN map proves the
   table quiescent since the capture. *)
let catchup_net_changes b ~wal ~lsn0 =
  if Wal.oldest_retained wal > lsn0 then raise Catchup_truncated;
  let table = Base_table.name b in
  match Wal.last_lsn_for wal ~table with
  | Some l when l >= lsn0 ->
    Trace.with_span "refresh.catchup" ~attrs:[ ("table", table) ] (fun () ->
        fst (Recovery.net_changes wal ~table ~since:lsn0))
  | _ -> []

(* Replay one subscriber's view of the net changes as Upsert/Remove
   overlay messages.  WAL records carry stored (annotated) tuples, so the
   user part is extracted before the snapshot's restriction/projection
   apply.  Exactly one message per net-changed address: an address whose
   final version fails the restriction gets a Remove (idempotent if the
   snapshot never held it). *)
let catchup_messages nets ~restrict ~project ~xmit =
  List.iter
    (fun (addr, net) ->
      match net.Recovery.after with
      | Some stored ->
        let user = Annotations.user_part stored in
        if restrict user then xmit (Refresh_msg.Upsert { addr; values = project user })
        else xmit (Refresh_msg.Remove { addr })
      | None -> xmit (Refresh_msg.Remove { addr }))
    nets

(* Chunked differential refresh of [subs] over [b]: table intention lock,
   lock-coupled page chunks driving the resumable scan cursor, then one
   short table-S catch-up replaying the WAL tail before the Snaptime
   markers.  Eager mode reads under IS + page S; deferred mode fix-up
   writes need IX + page X.  The catch-up upgrade IS+S = S (or IX+S = SIX)
   still excludes updaters for its short window, which is what makes the
   committed stream transaction-consistent as of catch-up time. *)
let run_chunked_differential t b subs =
  let wal =
    match Base_table.wal b with
    | Some w -> w
    | None -> invalid_arg "chunked refresh requires a WAL on the base table"
  in
  let deferred = Base_table.mode b = Base_table.Deferred in
  let txn = Txn.begin_txn t.txns in
  let pin = ref None in
  match
    Txn.lock txn (Base_table.lock_resource b) (if deferred then Lock.IX else Lock.IS);
    let lsn0 = Wal.end_lsn wal in
    pin :=
      Some
        (Horizon.acquire (wal_horizon t wal) ~kind:Lease.Scan
           ~holder:("scan:" ^ Base_table.name b) ~lsn:lsn0 ());
    let cursor = Differential.start ?parallel:(parallel_opt t) ~base:b subs in
    let max_hold = ref 0.0 in
    let observe_hold t0 =
      let d = Trace.now_us () -. t0 in
      if d > !max_hold then max_hold := d;
      Metrics.observe h_lock_hold d
    in
    let chunks =
      chunk_walk t txn b
        ~page_mode:(if deferred then Lock.X else Lock.S)
        ~total:(Differential.pages cursor) ~observe_hold
        ~scan:(fun ~last_page -> Differential.scan_to cursor ~last_page)
    in
    let t0 = Trace.now_us () in
    Txn.lock txn (Base_table.lock_resource b) Lock.S;
    let nets = catchup_net_changes b ~wal ~lsn0 in
    Differential.emit_tails cursor;
    Array.iter
      (fun sub ->
        catchup_messages nets ~restrict:sub.Differential.sub_restrict
          ~project:sub.Differential.sub_project ~xmit:sub.Differential.sub_xmit)
      subs;
    let g = Differential.finish cursor in
    observe_hold t0;
    let stats =
      { cs_chunks = chunks; cs_catchup = List.length nets; cs_max_hold_us = !max_hold }
    in
    Metrics.observe h_chunks (float_of_int stats.cs_chunks);
    Metrics.observe h_catchup_records (float_of_int stats.cs_catchup);
    (g, stats)
  with
  | v ->
    Option.iter Lease.release !pin;
    ignore (Txn.commit txn : int list);
    v
  | exception e ->
    Option.iter Lease.release !pin;
    if Txn.is_active txn then ignore (Txn.abort txn : int list);
    raise e

(* Chunked full refresh: same protocol with a read-only page scan (always
   IS + page S — full refresh never writes annotations here; the priming
   fix-up case stays monolithic).  The stream is Clear, chunked Upserts,
   catch-up overlay, Snaptime. *)
let run_chunked_full t b ~restrict ~project ~xmit =
  let wal =
    match Base_table.wal b with
    | Some w -> w
    | None -> invalid_arg "chunked refresh requires a WAL on the base table"
  in
  let txn = Txn.begin_txn t.txns in
  let pin = ref None in
  match
    Txn.lock txn (Base_table.lock_resource b) Lock.IS;
    let lsn0 = Wal.end_lsn wal in
    pin :=
      Some
        (Horizon.acquire (wal_horizon t wal) ~kind:Lease.Scan
           ~holder:("scan:" ^ Base_table.name b) ~lsn:lsn0 ());
    let now = Clock.tick (Base_table.clock b) in
    xmit Refresh_msg.Clear;
    let scanned = ref 0 in
    let sent = ref 0 in
    let last_scanned = ref 0 in
    let max_hold = ref 0.0 in
    let observe_hold t0 =
      let d = Trace.now_us () -. t0 in
      if d > !max_hold then max_hold := d;
      Metrics.observe h_lock_hold d
    in
    let chunks =
      chunk_walk t txn b ~page_mode:Lock.S ~total:(Base_table.data_pages b)
        ~observe_hold
        ~scan:(fun ~last_page ->
          for page = !last_scanned + 1 to last_page do
            Base_table.iter_page_stored b ~page (fun addr stored ->
                incr scanned;
                let user = Annotations.user_part stored in
                if restrict user then begin
                  incr sent;
                  xmit (Refresh_msg.Upsert { addr; values = project user })
                end)
          done;
          last_scanned := last_page)
    in
    let t0 = Trace.now_us () in
    Txn.lock txn (Base_table.lock_resource b) Lock.S;
    let nets = catchup_net_changes b ~wal ~lsn0 in
    catchup_messages nets ~restrict ~project ~xmit;
    xmit (Refresh_msg.Snaptime now);
    observe_hold t0;
    let stats =
      { cs_chunks = chunks; cs_catchup = List.length nets; cs_max_hold_us = !max_hold }
    in
    Metrics.observe h_chunks (float_of_int stats.cs_chunks);
    Metrics.observe h_catchup_records (float_of_int stats.cs_catchup);
    ( { Full_refresh.new_snaptime = now; entries_scanned = !scanned; data_messages = !sent },
      stats )
  with
  | v ->
    Option.iter Lease.release !pin;
    ignore (Txn.commit txn : int list);
    v
  | exception e ->
    Option.iter Lease.release !pin;
    if Txn.is_active txn then ignore (Txn.abort txn : int list);
    raise e

type checkpoint_report = {
  cp_base : string;
  cp_begin_lsn : Wal.lsn;
  cp_end_lsn : Wal.lsn;
  cp_pages_snapshotted : int;
  cp_pages_flushed : int;
  cp_bytes_written : int;
  cp_truncated_to : Wal.lsn;
  cp_log_bytes_reclaimed : int;
  cp_gated : Lease.gating list;  (* leases that lowered the truncation floor *)
}

(* The highest LSN the log may be truncated to, given a checkpoint at
   [ceiling]: the WAL's retention horizon lowers it to the oldest LSN any
   live lease still needs — a chunked scan's catch-up start, a log-based
   snapshot's cursor, a checkpoint in flight.  This is what keeps
   [Catchup_truncated] (and the log-based method's forced-full fallback)
   a managed contract — truncation through this gate can never strand a
   live reader. *)
let truncation_floor t wal ~ceiling =
  let floor, gating = Horizon.lsn_floor (wal_horizon t wal) ~ceiling in
  (max (Wal.oldest_retained wal) floor, gating)

let checkpoint t base_name =
  let b = base t base_name in
  let wal =
    match Base_table.wal b with
    | Some w -> w
    | None ->
      raise
        (Bad_definition (Printf.sprintf "table %s has no WAL to checkpoint" base_name))
  in
  (* The Begin_checkpoint record carries the transactions genuinely in
     flight at this instant.  WAL-level autocommit (Base_table.log_op)
     appends Begin/op/Commit atomically, so these are the manager's
     lock-level transactions — refresh scans and writers mid-flight.
     The checkpoint itself runs under a lease at the current end: a
     vacuum fired from the yield hook can then never truncate records
     the fuzzy pass has yet to fence.  Released before the floor below
     is computed, so a checkpoint never gates itself. *)
  let stats =
    Horizon.with_lease (wal_horizon t wal) ~kind:Lease.Checkpoint
      ~holder:("checkpoint:" ^ Base_table.name b) ~lsn:(Wal.oldest_retained wal)
      (fun _ ->
        Wal_checkpoint.run ~wal ~pool:(Base_table.pool b)
          ~active:(Txn.active_ids t.txns) ?yield:t.on_chunk ())
  in
  let bytes_before = Wal.byte_size wal in
  let floor, gated = truncation_floor t wal ~ceiling:stats.Wal_checkpoint.begin_lsn in
  if floor > Wal.oldest_retained wal then Wal.truncate_before wal floor;
  {
    cp_base = Base_table.name b;
    cp_begin_lsn = stats.Wal_checkpoint.begin_lsn;
    cp_end_lsn = stats.Wal_checkpoint.end_lsn;
    cp_pages_snapshotted = stats.Wal_checkpoint.pages_snapshotted;
    cp_pages_flushed = stats.Wal_checkpoint.pages_flushed;
    cp_bytes_written = stats.Wal_checkpoint.bytes_written;
    cp_truncated_to = Wal.oldest_retained wal;
    cp_log_bytes_reclaimed = bytes_before - Wal.byte_size wal;
    cp_gated = gated;
  }

(* --- Vacuum --------------------------------------------------------------- *)

type snapshot_vacuum = {
  sv_snapshot : string;
  sv_examined : int;
  sv_reclaimed : int;
  sv_zombied : int;
  sv_kept : int;
  sv_bytes : int;
}

type wal_vacuum = {
  wv_bases : string list;  (* bases sharing this physical log, sorted *)
  wv_truncated_to : Wal.lsn;
  wv_log_bytes_reclaimed : int;
  wv_gated : Lease.gating list;
}

type vacuum_report = {
  vac_dry_run : bool;
  vac_snapshots : snapshot_vacuum list;
  vac_wals : wal_vacuum list;
}

(* Reclaim everything the retention horizon no longer needs, in one pass:
   expired snapshot versions first, then the WAL.  Bases sharing one
   physical log are checkpointed as a group — the log is truncated once,
   to the minimum checkpoint begin LSN over the group (each base's redo
   start), lowered by whatever leases are live.  Both halves consult the
   same horizon, so a pinned read, live scan or log cursor holds back the
   vacuum exactly as it holds back a checkpoint. *)
let vacuum ?older_than ?(dry_run = false) t =
  let snaps =
    Hashtbl.fold (fun _ s acc -> s :: acc) t.snapshots []
    |> List.sort (fun a b -> compare a.snap_name b.snap_name)
  in
  let vac_snapshots =
    List.map
      (fun s ->
        let st = Snapshot_table.vacuum ?older_than ~dry_run s.table in
        {
          sv_snapshot = s.snap_name;
          sv_examined = st.Version_store.vac_examined;
          sv_reclaimed = st.Version_store.vac_reclaimed;
          sv_zombied = st.Version_store.vac_zombied;
          sv_kept = st.Version_store.vac_kept;
          sv_bytes = st.Version_store.vac_bytes;
        })
      snaps
  in
  let groups = ref [] in
  Hashtbl.iter
    (fun _ bst ->
      match Base_table.wal bst.base_table with
      | None -> ()
      | Some wal -> (
        match List.find_opt (fun (w, _) -> w == wal) !groups with
        | Some (_, bases) -> bases := bst.base_table :: !bases
        | None -> groups := (wal, ref [ bst.base_table ]) :: !groups))
    t.bases;
  let vac_wals =
    List.map
      (fun (wal, bases) ->
        let bases =
          List.sort
            (fun a b -> compare (Base_table.name a) (Base_table.name b))
            !bases
        in
        let names = List.map Base_table.name bases in
        if dry_run then begin
          (* What a vacuum now could reclaim at best: a checkpoint's begin
             LSN can reach at most the log's current end. *)
          let floor, gating = truncation_floor t wal ~ceiling:(Wal.end_lsn wal) in
          {
            wv_bases = names;
            wv_truncated_to = floor;
            (* LSNs are byte offsets, so the reclaimable span is a byte count. *)
            wv_log_bytes_reclaimed = floor - Wal.oldest_retained wal;
            wv_gated = gating;
          }
        end
        else begin
          let bytes_before = Wal.byte_size wal in
          let h = wal_horizon t wal in
          let begin_lsns =
            List.map
              (fun b ->
                Horizon.with_lease h ~kind:Lease.Checkpoint
                  ~holder:("checkpoint:" ^ Base_table.name b)
                  ~lsn:(Wal.oldest_retained wal)
                  (fun _ ->
                    let stats =
                      Wal_checkpoint.run ~wal ~pool:(Base_table.pool b)
                        ~active:(Txn.active_ids t.txns) ?yield:t.on_chunk ()
                    in
                    stats.Wal_checkpoint.begin_lsn))
              bases
          in
          let ceiling = List.fold_left min (Wal.end_lsn wal) begin_lsns in
          let floor, gating = truncation_floor t wal ~ceiling in
          if floor > Wal.oldest_retained wal then Wal.truncate_before wal floor;
          {
            wv_bases = names;
            wv_truncated_to = Wal.oldest_retained wal;
            wv_log_bytes_reclaimed = bytes_before - Wal.byte_size wal;
            wv_gated = gating;
          }
        end)
      !groups
  in
  let vac_wals =
    List.sort (fun a b -> compare a.wv_bases b.wv_bases) vac_wals
  in
  { vac_dry_run = dry_run; vac_snapshots; vac_wals }

(* Batched transport: buffer batchable (data) messages and frame up to
   [t.batch] of them as one Batch under a single header, sequence number
   and checksum.  Control messages flush the buffer first and travel
   alone — Snaptime is among them, so the stream's trailing batch is
   always on the wire before the commit marker.  One such closure per
   stream: it owns the epoch's sequence-number counter. *)
let make_stream_xmit t ~epoch ~link =
  let seq = ref 0 in
  let buffered = ref [] in  (* newest first *)
  let buffered_n = ref 0 in
  let send_framed msg =
    let logical = Refresh_msg.logical_count msg in
    let framed = Refresh_msg.encode_framed ~epoch ~seq:!seq msg in
    incr seq;
    Link.send link ~logical framed
  in
  let flush () =
    match !buffered with
    | [] -> ()
    | [ m ] ->
      buffered := [];
      buffered_n := 0;
      send_framed m
    | ms ->
      buffered := [];
      buffered_n := 0;
      send_framed (Refresh_msg.Batch (List.rev ms))
  in
  fun msg ->
    if t.batch > 1 && Refresh_msg.batchable msg then begin
      buffered := msg :: !buffered;
      incr buffered_n;
      if !buffered_n >= t.batch then flush ()
    end
    else begin
      flush ();
      send_framed msg
    end

(* Run one refresh stream for [s] under [epoch].  Every message is framed
   with the epoch and a sequence number so the receiver can detect gaps,
   truncation, and corruption, and apply the stream atomically at its
   Snaptime commit marker.  Returns the report plus an [on_commit] hook
   that advances the snapshot's change cursors — which must only happen
   once the receiver has actually committed the epoch, or an aborted
   stream would silently lose the changes between the old and new cursor
   on retry. *)
let rec run_method t s ~epoch method_used =
  let b = base t s.base_name in
  let xmit = make_stream_xmit t ~epoch ~link:s.link in
  let nop_commit () = () in
  match method_used with
  | Used_full ->
    let r = Full_refresh.refresh ~base:b ~restrict:s.restrict ~project:s.project ~xmit () in
    ( {
        (blank_report s method_used) with
        new_snaptime = r.Full_refresh.new_snaptime;
        entries_scanned = r.Full_refresh.entries_scanned;
        data_messages = r.Full_refresh.data_messages;
      },
      nop_commit )
  | Used_differential ->
    let tail_suppression =
      if s.tail_suppression then Some (Snapshot_table.high_water s.table) else None
    in
    let r =
      Differential.refresh ~tail_suppression ?prune:s.prune
        ?parallel:(parallel_opt t) ~base:b
        ~snaptime:(Snapshot_table.snaptime s.table) ~restrict:s.restrict ~project:s.project
        ~xmit ()
    in
    ( {
        (blank_report s method_used) with
        new_snaptime = r.Differential.new_snaptime;
        entries_scanned = r.Differential.entries_scanned;
        entries_skipped = r.Differential.entries_skipped;
        pages_decoded = r.Differential.pages_decoded;
        fixup_writes = r.Differential.fixup_writes;
        data_messages = r.Differential.data_messages;
        tail_suppressed = r.Differential.tail_suppressed;
      },
      nop_commit )
  | Used_ideal ->
    let log = ensure_capture t s.base_name in
    let r =
      Ideal.refresh ~base:b ~log ~cursor:s.cursor_seq ~restrict:s.restrict ~project:s.project
        ~xmit ()
    in
    let on_commit () =
      s.cursor_seq <- r.Ideal.new_cursor;
      (* Reclaim change-log space below the slowest ideal cursor on this
         base — the buffer-management obligation the paper charges change
         buffering with.  Strictly after commit: truncating below the new
         cursor while the stream could still abort is permanent loss. *)
      let min_cursor =
        Hashtbl.fold
          (fun _ other acc ->
            if key other.base_name = key s.base_name && other.spec = Ideal then
              min acc other.cursor_seq
            else acc)
          t.snapshots max_int
      in
      let min_cursor = min min_cursor r.Ideal.new_cursor in
      if min_cursor < max_int then Change_log.truncate_below log min_cursor
    in
    ( {
        (blank_report s method_used) with
        new_snaptime = r.Ideal.new_snaptime;
        entries_scanned = r.Ideal.net_changes;
        data_messages = r.Ideal.data_messages;
      },
      on_commit )
  | Used_log_based ->
    let wal =
      match Base_table.wal b with
      | Some w -> w
      | None -> raise (Bad_definition "log-based refresh requires a WAL on the base table")
    in
    if s.cursor_lsn < Wal.oldest_retained wal then begin
      (* "One could bound the buffering required and transmit the entire
         (restricted) base table if the last refresh of the snapshot
         precedes the earliest retained changes." *)
      Log.info (fun m ->
          m "snapshot %s: log truncated past its cursor; falling back to full refresh"
            s.snap_name);
      let r, commit_full = run_method t s ~epoch Used_full in
      (r, fun () -> commit_full (); set_cursor_lsn s (Wal.end_lsn wal))
    end
    else begin
      let r =
        Log_based.refresh ~base:b ~wal ~cursor:s.cursor_lsn ~restrict:s.restrict
          ~project:s.project ~xmit ()
      in
      ( {
          (blank_report s method_used) with
          new_snaptime = r.Log_based.new_snaptime;
          entries_scanned = r.Log_based.data_messages;
          data_messages = r.Log_based.data_messages;
          log_records_scanned = r.Log_based.log_records_scanned;
        },
        fun () -> set_cursor_lsn s r.Log_based.new_cursor )
    end

let choose_method t s =
  match s.spec with
  | Full -> Used_full
  | Differential -> Used_differential
  | Ideal -> Used_ideal
  | Log_based -> Used_log_based
  | Auto ->
    let full, diff = estimate t s.snap_name in
    if diff <= full then Used_differential else Used_full

(* An Auto snapshot may alternate between full and differential refresh.
   A full refresh synchronizes the snapshot's contents as of its new
   SnapTime but does not touch annotations — so an entry inserted before
   it (still carrying NULL PrevAddr, hence absent from the chain) could be
   deleted afterwards without leaving any anomaly, and a later
   differential refresh would miss the deletion.  Running the fix-up pass
   alongside such a full refresh restores the invariant the differential
   scan depends on: "the annotation state is current as of SnapTime". *)
let needs_priming_fixup b s method_used =
  method_used = Used_full && s.spec = Auto && Base_table.mode b = Base_table.Deferred

(* Deferred-mode differential refresh (and a priming fix-up) rewrites
   annotation fields, so it needs an exclusive table lock; every other
   method only reads. *)
let lock_mode_for b s = function
  | Used_differential when Base_table.mode b = Base_table.Deferred -> Lock.X
  | Used_full when needs_priming_fixup b s Used_full -> Lock.X
  | Used_differential | Used_full | Used_ideal | Used_log_based -> Lock.S

(* The chunked protocol applies when a chunk size is configured and the
   method is a scan over a WAL-backed table; priming passes (which rewrite
   annotations wholesale) and the log/change-log methods (no table scan to
   chunk) stay monolithic.  [chunk_entries = max_int] — the default —
   takes the monolithic path unconditionally, byte-identical to the
   pre-chunking code. *)
let chunked_eligible t b s ~prime method_used =
  t.chunk_entries < max_int && (not prime)
  && Base_table.wal b <> None
  && (not (needs_priming_fixup b s method_used))
  && (method_used = Used_differential || method_used = Used_full)

(* One chunked solo stream attempt (a group of one for differential). *)
let attempt_chunked t s ~epoch method_used =
  let b = base t s.base_name in
  let before = Link.stats s.link in
  let xmit = make_stream_xmit t ~epoch ~link:s.link in
  let report =
    Trace.with_span "refresh.scan"
      ~attrs:[ ("snapshot", s.snap_name); ("method", method_name method_used) ]
      (fun () ->
        match method_used with
        | Used_differential ->
          let sub =
            {
              Differential.sub_snaptime = Snapshot_table.snaptime s.table;
              sub_restrict = s.restrict;
              sub_project = s.project;
              sub_tail_suppression =
                (if s.tail_suppression then Some (Snapshot_table.high_water s.table)
                 else None);
              sub_prune = s.prune;
              sub_xmit = xmit;
            }
          in
          let g, cs = run_chunked_differential t b [| sub |] in
          let r = g.Differential.sub_reports.(0) in
          {
            (blank_report s method_used) with
            new_snaptime = r.Differential.new_snaptime;
            entries_scanned = r.Differential.entries_scanned;
            entries_skipped = r.Differential.entries_skipped;
            pages_decoded = r.Differential.pages_decoded;
            fixup_writes = r.Differential.fixup_writes;
            data_messages = r.Differential.data_messages + cs.cs_catchup;
            tail_suppressed = r.Differential.tail_suppressed;
            chunks = cs.cs_chunks;
            catchup_records = cs.cs_catchup;
            max_lock_hold_us = cs.cs_max_hold_us;
          }
        | _ ->
          let r, cs = run_chunked_full t b ~restrict:s.restrict ~project:s.project ~xmit in
          {
            (blank_report s Used_full) with
            new_snaptime = r.Full_refresh.new_snaptime;
            entries_scanned = r.Full_refresh.entries_scanned;
            data_messages = r.Full_refresh.data_messages + cs.cs_catchup;
            chunks = cs.cs_chunks;
            catchup_records = cs.cs_catchup;
            max_lock_hold_us = cs.cs_max_hold_us;
          })
  in
  let after = Link.stats s.link in
  ( {
      report with
      link_messages = after.Link.messages - before.Link.messages;
      link_logical_messages = after.Link.logical_messages - before.Link.logical_messages;
      link_bytes = after.Link.bytes - before.Link.bytes;
    },
    fun () -> () )

(* One complete stream attempt: initiate, lock, optionally prime
   annotations, stream the epoch.  Raises Link.Link_down on an outage. *)
let attempt_refresh t s ~epoch ~prime ~send_request ~allow_chunked method_used =
  let b = base t s.base_name in
  (* "The refresh algorithm is initiated by sending the last snapshot
     refresh time (SnapTime) ... to the base table." *)
  if send_request then
    Trace.with_span "refresh.request" ~attrs:[ ("snapshot", s.snap_name) ] (fun () ->
        Link.send s.request_link
          (Refresh_msg.encode
             (Refresh_msg.Request { snaptime = Snapshot_table.snaptime s.table })));
  if allow_chunked && chunked_eligible t b s ~prime method_used then
    attempt_chunked t s ~epoch method_used
  else
  let lock_mode = if prime then Lock.X else lock_mode_for b s method_used in
  with_table_lock t b lock_mode (fun () ->
      let before = Link.stats s.link in
      let fixups =
        if prime || needs_priming_fixup b s method_used then
          Trace.with_span "refresh.fixup" ~attrs:[ ("snapshot", s.snap_name) ] (fun () ->
              let writes =
                (Fixup.run b ~fixup_time:(Clock.tick (Base_table.clock b))).Fixup.writes
              in
              (* A priming fix-up is idempotent (safe to re-run on a retried
                 attempt) and its writes are not charged to the report. *)
              if prime then 0 else writes)
        else 0
      in
      let report, on_commit =
        Trace.with_span "refresh.scan"
          ~attrs:[ ("snapshot", s.snap_name); ("method", method_name method_used) ]
          (fun () -> run_method t s ~epoch method_used)
      in
      let after = Link.stats s.link in
      ( {
          report with
          fixup_writes = report.fixup_writes + fixups;
          link_messages = after.Link.messages - before.Link.messages;
          link_logical_messages =
            after.Link.logical_messages - before.Link.logical_messages;
          link_bytes = after.Link.bytes - before.Link.bytes;
        },
        on_commit ))

let backoff_delay t ~failures =
  let p = t.retry in
  let raw = p.backoff_us *. Float.pow p.backoff_multiplier (float_of_int (failures - 1)) in
  let capped = Float.min p.max_backoff_us raw in
  if p.jitter <= 0.0 then capped
  else capped *. (1.0 -. (p.jitter /. 2.0) +. Snapdiff_util.Rng.float t.rng p.jitter)

(* Refresh [s] with retry: each attempt streams a fresh epoch; a failed
   attempt (link outage mid-stream, or a stream the receiver refused to
   commit because of loss/corruption/truncation) is discarded wholesale
   on the snapshot side and retried after exponential backoff with
   jitter.  After [escalate_after] consecutive failures the method
   degrades to a full refresh — the stream that needs the least shared
   state to converge.  [choose] picks the method for each attempt.

   [prior_failures]/[prior_backoff] account for attempts made elsewhere —
   a member of a group scan whose arm failed retries solo here with the
   group attempt counted as attempt 1, so escalation and the attempt cap
   see one consecutive-failure history, not two. *)
let refresh_with_retries t s ~choose ?(prime = false) ?(send_request = true)
    ?(prior_failures = 0) ?(prior_backoff = 0.0) () =
  let p = t.retry in
  let backoff_total = ref prior_backoff in
  let t_start = Trace.now_us () in
  (* Set when a chunked attempt found the WAL truncated past its catch-up
     LSN: every subsequent attempt of this refresh runs as a monolithic
     full refresh, the one stream guaranteed consistent without a log. *)
  let force_monolithic_full = ref false in
  let rec go attempt =
    Metrics.incr m_attempts;
    let failures = attempt - 1 in
    let escalated =
      !force_monolithic_full || (p.escalate_after > 0 && failures >= p.escalate_after)
    in
    if escalated && failures = p.escalate_after then Metrics.incr m_escalations;
    let method_used = if escalated then Used_full else choose t s in
    let epoch = s.next_epoch in
    s.next_epoch <- epoch + 1;
    let outcome =
      match
        attempt_refresh t s ~epoch ~prime ~send_request
          ~allow_chunked:(not !force_monolithic_full) method_used
      with
      | report, on_commit ->
        if Snapshot_table.last_committed_epoch s.table = epoch then Ok (report, on_commit)
        else
          Error
            (Option.value (Snapshot_table.last_abort s.table)
               ~default:"stream not committed by receiver")
      | exception Catchup_truncated ->
        force_monolithic_full := true;
        Metrics.incr m_escalations;
        Error "WAL truncated past the chunked scan's catch-up LSN"
      | exception Link.Link_down l -> Error (Printf.sprintf "link %s down mid-stream" l)
      | exception Link.No_receiver l ->
        (* A wiring error, not a transient fault: no receiver will appear
           by retrying, so fail the refresh immediately. *)
        let reason = Printf.sprintf "link %s: no receiver attached" l in
        Snapshot_table.discard_stage s.table ~reason;
        Metrics.incr m_aborted_streams;
        Metrics.incr m_failures;
        Metrics.observe h_duration (Trace.now_us () -. t_start);
        raise (Refresh_failed { snapshot = s.snap_name; attempts = attempt; reason })
    in
    match outcome with
    | Ok (report, on_commit) ->
      on_commit ();
      s.mutations_at_refresh <- Base_table.mutations (base t s.base_name);
      (* A committed refresh of any method leaves the snapshot consistent
         as of the WAL's current end, so the log cursor may advance too —
         this is what makes a later scheduler-driven switch to the
         log-based method replay only the genuine tail.  (The log-based
         method's own on_commit has already set its exact new cursor.) *)
      (match Base_table.wal (base t s.base_name) with
      | Some wal when s.spec <> Log_based -> set_cursor_lsn s (Wal.end_lsn wal)
      | _ -> ());
      let report =
        { report with attempts = attempt; aborts = failures; escalated;
          backoff_us = !backoff_total }
      in
      note_report s report;
      Metrics.incr m_refreshes;
      Metrics.add m_data_messages report.data_messages;
      Metrics.add m_entries_scanned report.entries_scanned;
      Metrics.observe h_duration (Trace.now_us () -. t_start);
      Log.info (fun m ->
          m "refresh %s via %s: %d data msgs, %d bytes, %d fixups, snaptime %d%s"
            report.snapshot (method_name report.method_used) report.data_messages
            report.link_bytes report.fixup_writes report.new_snaptime
            (if report.attempts > 1 then
               Printf.sprintf " (%d attempts%s)" report.attempts
                 (if report.escalated then ", escalated to full" else "")
             else ""));
      report
    | Error reason ->
      Snapshot_table.discard_stage s.table ~reason;
      Metrics.incr m_aborted_streams;
      Log.info (fun m ->
          m "refresh %s attempt %d/%d failed: %s" s.snap_name attempt p.max_attempts reason);
      if attempt >= p.max_attempts then begin
        Metrics.incr m_failures;
        Metrics.observe h_duration (Trace.now_us () -. t_start);
        raise (Refresh_failed { snapshot = s.snap_name; attempts = attempt; reason })
      end
      else begin
        let d = backoff_delay t ~failures:(failures + 1) in
        backoff_total := !backoff_total +. d;
        Metrics.observe h_backoff d;
        Trace.event "refresh.retry"
          ~attrs:
            [ ("snapshot", s.snap_name);
              ("attempt", string_of_int attempt);
              ("reason", reason);
              ("backoff_us", Printf.sprintf "%.0f" d) ];
        Link.advance_time s.link d;
        (* The transport layer re-establishes a dead link after backoff;
           an armed fault plan stays armed and may kill it again. *)
        if not (Link.is_up s.link) then Link.set_up s.link true;
        go (attempt + 1)
      end
  in
  Trace.with_span "refresh" ~attrs:[ ("snapshot", s.snap_name) ]
    (fun () -> go (prior_failures + 1))

let refresh_snapshot t s =
  refresh_with_retries t s
    ~choose:(fun t s -> choose_method t s)
    ()

(* --- Group refresh ------------------------------------------------------- *)

(* One multiplexed group attempt over [b]: every member gets its own epoch,
   Request control message, framed/batched stream on its own link, and
   commit check — but the base table is scanned once.  A member whose link
   fails mid-stream is muted (its sends become no-ops) rather than allowed
   to abort the scan: the other subscribers' streams must not notice, and
   the scan's shared page-decode/fix-up state must stay deterministic.
   Returns everything the caller needs to settle each arm. *)
let group_attempt t b members =
  let n = Array.length members in
  let epochs =
    Array.map
      (fun s ->
        let e = s.next_epoch in
        s.next_epoch <- e + 1;
        e)
      members
  in
  let failed = Array.make n None in
  let fatal = Array.make n false in
  let mark i = function
    | Link.Link_down l ->
      if failed.(i) = None then
        failed.(i) <- Some (Printf.sprintf "link %s down mid-stream" l)
    | Link.No_receiver l ->
      if failed.(i) = None then
        failed.(i) <- Some (Printf.sprintf "link %s: no receiver attached" l);
      fatal.(i) <- true
    | e -> raise e
  in
  Array.iteri
    (fun i s ->
      Metrics.incr m_attempts;
      try
        Trace.with_span "refresh.request" ~attrs:[ ("snapshot", s.snap_name) ] (fun () ->
            Link.send s.request_link
              (Refresh_msg.encode
                 (Refresh_msg.Request { snaptime = Snapshot_table.snaptime s.table })))
      with e -> mark i e)
    members;
  let make_subs () =
    Array.mapi
      (fun i s ->
        let raw = make_stream_xmit t ~epoch:epochs.(i) ~link:s.link in
        {
          Differential.sub_snaptime = Snapshot_table.snaptime s.table;
          sub_restrict = s.restrict;
          sub_project = s.project;
          sub_tail_suppression =
            (if s.tail_suppression then Some (Snapshot_table.high_water s.table)
             else None);
          sub_prune = s.prune;
          sub_xmit = (fun msg -> if failed.(i) = None then try raw msg with e -> mark i e);
        })
      members
  in
  if t.chunk_entries < max_int && Base_table.wal b <> None then begin
    (* Chunked group scan: run_chunked_differential owns the transaction
       and the intention-lock/page-lock protocol.  A truncated catch-up
       fails every arm of this attempt; the arms then degrade solo, where
       the retry loop escalates them to monolithic full refreshes. *)
    let before = Array.map (fun s -> Link.stats s.link) members in
    let subs = make_subs () in
    let result =
      match
        Trace.with_span "refresh.group"
          ~attrs:[ ("base", Base_table.name b); ("subscribers", string_of_int n) ]
          (fun () -> run_chunked_differential t b subs)
      with
      | g, cs -> Some (g, cs)
      | exception Catchup_truncated ->
        Metrics.incr m_escalations;
        Array.iteri
          (fun i _ ->
            if failed.(i) = None then
              failed.(i) <- Some "WAL truncated past the chunked scan's catch-up LSN")
          members;
        None
    in
    Metrics.observe h_group_size (float_of_int n);
    let after = Array.map (fun s -> Link.stats s.link) members in
    (epochs, failed, fatal, result, before, after)
  end
  else
    (* Deferred-mode fix-up rewrites annotations: exclusive, like the solo
       path.  The group never includes a priming fix-up — only snapshots
       already routed to the differential method join a group. *)
    let lock_mode = if Base_table.mode b = Base_table.Deferred then Lock.X else Lock.S in
    with_table_lock t b lock_mode (fun () ->
        let before = Array.map (fun s -> Link.stats s.link) members in
        let subs = make_subs () in
        let g =
          Trace.with_span "refresh.group"
            ~attrs:
              [ ("base", Base_table.name b); ("subscribers", string_of_int n) ]
            (fun () ->
              Differential.refresh_group ?parallel:(parallel_opt t) ~base:b subs)
        in
        Metrics.observe h_group_size (float_of_int n);
        let after = Array.map (fun s -> Link.stats s.link) members in
        (epochs, failed, fatal, Some (g, no_chunk_stats), before, after))

(* Group-refresh [members] (all routed to the differential method) of base
   [b] under one shared scan, then settle each arm: a committed stream
   advances that snapshot's cursors exactly as a solo refresh would; a
   failed arm discards its staged stream and degrades to a solo refresh
   with retries, the group attempt counting as attempt 1 — unless the
   failure was a wiring error, which fails immediately. *)
let group_refresh_base t b members =
  let n = Array.length members in
  let t_start = Trace.now_us () in
  let epochs, failed, fatal, result, before, after = group_attempt t b members in
  Array.mapi
    (fun i s ->
      let committed =
        result <> None && failed.(i) = None
        && Snapshot_table.last_committed_epoch s.table = epochs.(i)
      in
      if committed then begin
        let g, cs =
          match result with Some gc -> gc | None -> assert false
        in
        s.mutations_at_refresh <- Base_table.mutations b;
        (match Base_table.wal b with
        | Some wal when s.spec <> Log_based -> set_cursor_lsn s (Wal.end_lsn wal)
        | _ -> ());
        let sr = g.Differential.sub_reports.(i) in
        let report =
          {
            (blank_report s Used_differential) with
            new_snaptime = sr.Differential.new_snaptime;
            entries_scanned = sr.Differential.entries_scanned;
            entries_skipped = sr.Differential.entries_skipped;
            pages_decoded = sr.Differential.pages_decoded;
            fixup_writes = sr.Differential.fixup_writes;
            data_messages = sr.Differential.data_messages + cs.cs_catchup;
            tail_suppressed = sr.Differential.tail_suppressed;
            link_messages = after.(i).Link.messages - before.(i).Link.messages;
            link_logical_messages =
              after.(i).Link.logical_messages - before.(i).Link.logical_messages;
            link_bytes = after.(i).Link.bytes - before.(i).Link.bytes;
            group_size = n;
            chunks = cs.cs_chunks;
            catchup_records = cs.cs_catchup;
            max_lock_hold_us = cs.cs_max_hold_us;
          }
        in
        note_report s report;
        Metrics.incr m_refreshes;
        Metrics.add m_data_messages report.data_messages;
        Metrics.add m_entries_scanned report.entries_scanned;
        Metrics.observe h_duration (Trace.now_us () -. t_start);
        Log.info (fun m ->
            m "refresh %s via group scan (%d subscribers): %d data msgs, %d bytes, snaptime %d"
              s.snap_name n report.data_messages report.link_bytes report.new_snaptime);
        (s.snap_name, Ok report)
      end
      else begin
        let reason =
          match failed.(i) with
          | Some r -> r
          | None ->
            Option.value (Snapshot_table.last_abort s.table)
              ~default:"stream not committed by receiver"
        in
        Snapshot_table.discard_stage s.table ~reason;
        Metrics.incr m_aborted_streams;
        Log.info (fun m ->
            m "refresh %s group arm failed: %s; degrading to solo" s.snap_name reason);
        if fatal.(i) || t.retry.max_attempts <= 1 then begin
          Metrics.incr m_failures;
          ( s.snap_name,
            Error (Refresh_failed { snapshot = s.snap_name; attempts = 1; reason }) )
        end
        else begin
          let d = backoff_delay t ~failures:1 in
          Metrics.observe h_backoff d;
          Trace.event "refresh.retry"
            ~attrs:
              [ ("snapshot", s.snap_name);
                ("attempt", "1");
                ("reason", reason);
                ("backoff_us", Printf.sprintf "%.0f" d) ];
          Link.advance_time s.link d;
          if not (Link.is_up s.link) then Link.set_up s.link true;
          match
            refresh_with_retries t s
              ~choose:(fun t s -> choose_method t s)
              ~prior_failures:1 ~prior_backoff:d ()
          with
          | r -> (s.snap_name, Ok r)
          | exception e -> (s.snap_name, Error e)
        end
      end)
    members

(* Refresh every snapshot named in [names] (all of them by default),
   grouping by base table so that all members routed to the differential
   method share one scan; the rest (full, ideal, log-based, or a group of
   one) refresh solo.  Per-snapshot failures are returned, not raised:
   one bad arm must not abandon the rest of the batch. *)
let refresh_all ?only t =
  let names =
    match only with
    | Some l -> List.map (fun n -> (snapshot t n).snap_name) l
    | None -> List.sort compare (snapshot_names t)
  in
  let by_base = Hashtbl.create 8 in
  let base_order = ref [] in
  List.iter
    (fun n ->
      let s = snapshot t n in
      let k = key s.base_name in
      if not (Hashtbl.mem by_base k) then base_order := k :: !base_order;
      let existing = Option.value (Hashtbl.find_opt by_base k) ~default:[] in
      Hashtbl.replace by_base k (s :: existing))
    names;
  let results =
    List.concat_map
      (fun k ->
        let members = List.rev (Hashtbl.find by_base k) in
        let b = (Hashtbl.find t.bases k).base_table in
        let grouped, solo =
          List.partition (fun s -> choose_method t s = Used_differential) members
        in
        let run_solo s =
          (s.snap_name, try Ok (refresh_snapshot t s) with e -> Error e)
        in
        let group_results =
          match grouped with
          | [] | [ _ ] -> List.map run_solo grouped
          | _ -> Array.to_list (group_refresh_base t b (Array.of_list grouped))
        in
        group_results @ List.map run_solo solo)
      (List.rev !base_order)
  in
  (* Report in request order regardless of grouping. *)
  List.map (fun n -> (n, List.assoc n results)) names

let refresh ?(group = false) t name =
  let s = snapshot t name in
  if not group then refresh_snapshot t s
  else begin
    (* Refresh the named snapshot together with its base-table siblings so
       they can share the scan; the named snapshot's outcome is this
       call's, the siblings' reports are dropped (use refresh_all to see
       them). *)
    let siblings = List.sort compare (snapshots_on t s.base_name) in
    match List.assoc s.snap_name (refresh_all ~only:siblings t) with
    | Ok r -> r
    | Error e -> raise e
  end

(* Selectivity measurement for CREATE SNAPSHOT.  Small tables get the
   exact single-pass scan; above [sample_threshold] entries we draw a
   fixed-size uniform reservoir sample instead of materializing and
   scanning the whole table. *)
let sample_threshold = 10_000
let sample_size = 1_000

let measure_selectivity t b ~restrict_expr restrict_fn =
  let n = Base_table.count b in
  if n = 0 then Selectivity.heuristic restrict_expr
  else if n <= sample_threshold then begin
    let hits = ref 0 in
    Base_table.iter_stored b (fun _ stored ->
        if restrict_fn (Annotations.user_part stored) then incr hits);
    float_of_int !hits /. float_of_int n
  end
  else begin
    let reservoir = Array.make sample_size (Tuple.make []) in
    let seen = ref 0 in
    Base_table.iter_stored b (fun _ stored ->
        let u = Annotations.user_part stored in
        if !seen < sample_size then reservoir.(!seen) <- u
        else begin
          let j = Snapdiff_util.Rng.int t.rng (!seen + 1) in
          if j < sample_size then reservoir.(j) <- u
        end;
        incr seen);
    let k = min sample_size !seen in
    let hits = ref 0 in
    for i = 0 to k - 1 do
      if restrict_fn reservoir.(i) then incr hits
    done;
    float_of_int !hits /. float_of_int k
  end

let validate_projection user_schema projection =
  List.iter
    (fun col_name ->
      match Schema.index_of user_schema col_name with
      | None -> raise (Bad_definition (Printf.sprintf "unknown column %s in projection" col_name))
      | Some i ->
        if Schema.is_hidden (Schema.column user_schema i) then
          raise (Bad_definition (Printf.sprintf "hidden column %s in projection" col_name)))
    projection

let create_snapshot t ~name ~base:base_name ?(restrict = Expr.ttrue) ?projection
    ?(method_ = Auto) ?link ?(tail_suppression = false) ?(prune = true) ?selectivity
    ?version_strategy ?version_retain () =
  if Hashtbl.mem t.snapshots (key name) then raise (Duplicate_name name);
  let bst = base_state t base_name in
  let b = bst.base_table in
  let user_schema = Base_table.user_schema b in
  (match Typecheck.check_predicate user_schema restrict with
  | Ok () -> ()
  | Error e -> raise (Bad_definition (Format.asprintf "%a" Typecheck.pp_error e)));
  (* "Compile" the restriction: simplify once at definition time. *)
  let restrict = Snapdiff_expr.Simplify.simplify restrict in
  let projection =
    match projection with
    | Some cols ->
      validate_projection user_schema cols;
      cols
    | None -> List.map (fun c -> c.Schema.name) (Schema.columns user_schema)
  in
  let projected_schema = Schema.project user_schema projection in
  let idx = Array.of_list (List.map (Schema.index_of_exn user_schema) projection) in
  let identity = Array.length idx = Schema.arity user_schema
                 && Array.for_all2 ( = ) idx (Array.init (Array.length idx) Fun.id) in
  let project = if identity then Fun.id else fun tuple -> Tuple.project_idx tuple idx in
  let restrict_fn = Eval.compile user_schema restrict in
  (match method_ with
  | Log_based when Base_table.wal b = None ->
    raise (Bad_definition "log-based refresh requires a WAL on the base table")
  | _ -> ());
  let link =
    match link with
    | Some l -> l
    | None -> Link.create ~name:(Printf.sprintf "%s->%s" base_name name) ()
  in
  let request_link = Link.create ~name:(Printf.sprintf "%s->%s" name base_name) () in
  (* The base site consumes control messages; it already holds the compiled
     definition, so receipt is just accounted. *)
  Link.attach request_link (fun (_ : bytes) -> ());
  let table =
    Snapshot_table.create ?version_strategy ?version_retain ~name ~schema:projected_schema
      ()
  in
  Link.attach link (Snapshot_table.apply_bytes table);
  (* CREATE SNAPSHOT ships the definition to the base site once. *)
  Link.send request_link
    (Refresh_msg.encode
       (Refresh_msg.Register { restrict = Expr.to_string restrict; projection }));
  (* Selectivity: measured when data exists (sampled above 10k entries),
     System R heuristics otherwise. *)
  let selectivity =
    match selectivity with
    | Some q -> Float.max 0.0 (Float.min 1.0 q)  (* caller-provided estimate *)
    | None -> measure_selectivity t b ~restrict_expr:restrict restrict_fn
  in
  (* Change capture must be live before the initial population so that the
     first ideal refresh misses nothing. *)
  let created_capture = method_ = Ideal && bst.capture = None in
  if method_ = Ideal then ignore (ensure_capture t base_name : Change_log.t);
  let s =
    {
      snap_name = name;
      base_name;
      restrict_expr = restrict;
      restrict = restrict_fn;
      projection;
      project;
      table;
      link;
      request_link;
      spec = method_;
      tail_suppression;
      prune = (if prune then Some (Differential.Prune_cache.create ()) else None);
      selectivity;
      cursor_seq = 0;
      cursor_lsn = Wal.start_lsn;
      cursor_lease = None;
      mutations_at_refresh = 0;
      next_epoch = 1;
      history = [];
    }
  in
  (* Initial population is always a full transfer, under the table lock.
     For a deferred-mode base that may later refresh differentially we also
     prime the annotations now (one fix-up pass, like R* adding the funny
     fields at CREATE SNAPSHOT time) so that the first differential refresh
     does not mistake the whole table for freshly inserted. *)
  let prime_fixup = Base_table.mode b = Base_table.Deferred
                    && (method_ = Auto || method_ = Differential) in
  let report =
    try
      refresh_with_retries t s
        ~choose:(fun _ _ -> Used_full)
        ~prime:prime_fixup ~send_request:false ()
    with e ->
      (* The populating transfer failed for good: leave no trace.  The
         snapshot was never registered, so no half-populated table with
         stale cursors survives; a capture subscription opened for it is
         rolled back too. *)
      if created_capture then drop_capture t base_name;
      raise e
  in
  (* Register only after the populating transfer has succeeded. *)
  Hashtbl.replace t.snapshots (key name) s;
  (* Cursors start "now": everything up to this point is already in the
     snapshot. *)
  (match bst.capture with
  | Some (log, _) -> s.cursor_seq <- Change_log.current_seq log
  | None -> ());
  (match Base_table.wal b with
  | Some wal -> set_cursor_lsn s (Wal.end_lsn wal)
  | None -> ());
  sync_cursor_lease t s;
  s.mutations_at_refresh <- Base_table.mutations b;
  Log.info (fun m ->
      m "created snapshot %s on %s (%s, selectivity %.3f): %d entries shipped"
        name base_name
        (Expr.to_string restrict)
        selectivity report.data_messages);
  report

(* Adopt a persisted snapshot replica (a file-backed store written by a
   previous process) into the catalog without an initial population: the
   next refresh resumes differentially from the snaptime the store was
   persisted at.  {!Snapshot_table.Corrupt_snapshot} from the integrity
   scan propagates to the caller, like {!Refresh_failed} — a typed,
   per-snapshot failure that leaves the catalog unchanged. *)
let attach_snapshot t ~name ~base:base_name ?(restrict = Expr.ttrue) ?projection
    ?(method_ = Auto) ?link ?(tail_suppression = false) ?(prune = true) ?selectivity
    ?snaptime ?version_strategy ?version_retain pool =
  if Hashtbl.mem t.snapshots (key name) then raise (Duplicate_name name);
  let bst = base_state t base_name in
  let b = bst.base_table in
  let user_schema = Base_table.user_schema b in
  (match Typecheck.check_predicate user_schema restrict with
  | Ok () -> ()
  | Error e -> raise (Bad_definition (Format.asprintf "%a" Typecheck.pp_error e)));
  let restrict = Snapdiff_expr.Simplify.simplify restrict in
  let projection =
    match projection with
    | Some cols ->
      validate_projection user_schema cols;
      cols
    | None -> List.map (fun c -> c.Schema.name) (Schema.columns user_schema)
  in
  let projected_schema = Schema.project user_schema projection in
  let idx = Array.of_list (List.map (Schema.index_of_exn user_schema) projection) in
  let identity = Array.length idx = Schema.arity user_schema
                 && Array.for_all2 ( = ) idx (Array.init (Array.length idx) Fun.id) in
  let project = if identity then Fun.id else fun tuple -> Tuple.project_idx tuple idx in
  let restrict_fn = Eval.compile user_schema restrict in
  (match method_ with
  | Ideal ->
    (* Change capture installed now would have missed everything between
       the persisted snaptime and this attach. *)
    raise (Bad_definition "cannot attach a persisted snapshot with the ideal method")
  | Log_based when Base_table.wal b = None ->
    raise (Bad_definition "log-based refresh requires a WAL on the base table")
  | _ -> ());
  (* May raise Corrupt_snapshot: nothing has been registered yet. *)
  let table =
    Snapshot_table.on_pool ?snaptime ?version_strategy ?version_retain ~name
      ~schema:projected_schema pool
  in
  let link =
    match link with
    | Some l -> l
    | None -> Link.create ~name:(Printf.sprintf "%s->%s" base_name name) ()
  in
  let request_link = Link.create ~name:(Printf.sprintf "%s->%s" name base_name) () in
  Link.attach request_link (fun (_ : bytes) -> ());
  Link.attach link (Snapshot_table.apply_bytes table);
  Link.send request_link
    (Refresh_msg.encode
       (Refresh_msg.Register { restrict = Expr.to_string restrict; projection }));
  let selectivity =
    match selectivity with
    | Some q -> Float.max 0.0 (Float.min 1.0 q)
    | None -> measure_selectivity t b ~restrict_expr:restrict restrict_fn
  in
  let s =
    {
      snap_name = name;
      base_name;
      restrict_expr = restrict;
      restrict = restrict_fn;
      projection;
      project;
      table;
      link;
      request_link;
      spec = method_;
      tail_suppression;
      prune = (if prune then Some (Differential.Prune_cache.create ()) else None);
      selectivity;
      cursor_seq = 0;
      cursor_lsn = Wal.start_lsn;
      cursor_lease = None;
      mutations_at_refresh = 0;
      next_epoch = 1;
      history = [];
    }
  in
  Hashtbl.replace t.snapshots (key name) s;
  sync_cursor_lease t s;
  Log.info (fun m ->
      m "attached persisted snapshot %s on %s (snaptime %d, %d entries)" name base_name
        (Snapshot_table.snaptime table) (Snapshot_table.count table))

let drop_snapshot t name =
  let s =
    match Hashtbl.find_opt t.snapshots (key name) with
    | Some s -> s
    | None -> raise (Unknown_snapshot name)
  in
  Hashtbl.remove t.snapshots (key name);
  release_cursor_lease s;
  let bst = base_state t s.base_name in
  match bst.capture with
  | None -> ()
  | Some (log, _) -> (
    (* Change capture only serves Ideal snapshots.  Dropping the last one
       on this base must detach the subscription and free the log, or the
       Change_log grows without bound (nothing would ever truncate it
       again); with Ideal snapshots remaining, reclaim up to the slowest
       surviving cursor in case the dropped one was the laggard. *)
    let remaining_ideal =
      Hashtbl.fold
        (fun _ other acc ->
          if key other.base_name = key s.base_name && other.spec = Ideal then other :: acc
          else acc)
        t.snapshots []
    in
    match remaining_ideal with
    | [] -> drop_capture t s.base_name
    | rest ->
      let min_cursor = List.fold_left (fun acc o -> min acc o.cursor_seq) max_int rest in
      Change_log.truncate_below log min_cursor)

(* --- Scheduler hooks ------------------------------------------------------ *)

let report_history ?limit t name =
  let h = (snapshot t name).history in
  match limit with
  | None -> h
  | Some n ->
    if n < 0 then invalid_arg "Manager.report_history: negative limit";
    List.filteri (fun i _ -> i < n) h

let set_method t name spec =
  let s = snapshot t name in
  let b = base t s.base_name in
  (match spec with
  | Log_based when Base_table.wal b = None ->
    raise (Bad_definition "log-based refresh requires a WAL on the base table")
  | Ideal when s.spec <> Ideal ->
    (* Capture installed now would have missed every change since the last
       refresh, so the first ideal stream would silently lose them. *)
    raise (Bad_definition "cannot switch a snapshot to the ideal method after creation")
  | _ -> ());
  s.spec <- spec;
  sync_cursor_lease t s

let mutations_since_refresh t name =
  let s = snapshot t name in
  max 0 (Base_table.mutations (base t s.base_name) - s.mutations_at_refresh)

let observed_update_fraction t name =
  let s = snapshot t name in
  observed_update_fraction (base t s.base_name) s
