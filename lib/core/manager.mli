(** Snapshot catalog and refresh driver — the [CREATE SNAPSHOT] /
    [REFRESH SNAPSHOT] layer (what R* exposed at the SQL level).

    Responsibilities, following the paper's conclusions section:

    - at snapshot definition time: type-check and "compile" the restriction
      and projection against the base table's schema, create the snapshot
      table (with its BaseAddr index) at the snapshot site, and populate it
      with an initial full transfer over the site link;
    - refresh-method selection: "an analysis of the query determines
      whether the differential refresh algorithm or full refresh is to be
      used"; with [Auto] the choice is re-evaluated per refresh from the
      measured selectivity and the update activity observed since the last
      refresh ({!Snapdiff_analysis.Model});
    - at refresh time: take the table-level lock on the base table, run the
      selected method, stream the messages through the snapshot's link, and
      advance the snapshot's cursors;
    - multiple snapshots per base table, each with its own restriction,
      projection, link, and refresh schedule, all sharing one set of
      base-table annotations. *)

open Snapdiff_txn
module Expr = Snapdiff_expr.Expr
module Change_log = Snapdiff_changelog.Change_log
module Link = Snapdiff_net.Link

type method_spec =
  | Auto  (** pick full vs differential per refresh from the cost model *)
  | Full
  | Differential
  | Ideal  (** requires change capture; installed automatically *)
  | Log_based  (** requires the base table to have been created with a WAL *)

type method_used = Used_full | Used_differential | Used_ideal | Used_log_based

val method_name : method_used -> string

type refresh_report = {
  snapshot : string;
  method_used : method_used;
  new_snaptime : Clock.ts;
  entries_scanned : int;  (** base entries (or net-changed addresses) visited *)
  entries_skipped : int;
      (** entries the pruned differential scan proved irrelevant via page
          summaries and never decoded *)
  pages_decoded : int;
      (** base-table pages this snapshot's stream consumed (differential
          scans only, 0 otherwise); under a group scan, members sharing a
          page each count it, while the physical decode happened once *)
  fixup_writes : int;
  data_messages : int;
  link_messages : int;  (** physical frames on the wire, incl. bracketing *)
  link_logical_messages : int;
      (** protocol messages those frames carried — the paper's metric;
          equals [link_messages] unless batching is on *)
  link_bytes : int;
  tail_suppressed : bool;
  log_records_scanned : int;  (** log-based method only *)
  attempts : int;  (** refresh attempts, including the successful one *)
  aborts : int;  (** streams the receiver discarded before success *)
  escalated : bool;  (** differential abandoned for full after repeated failures *)
  backoff_us : float;  (** simulated time spent backing off between attempts *)
  group_size : int;
      (** subscribers that shared the scan serving this refresh; 1 = solo *)
  chunks : int;
      (** page-range chunks the chunked concurrent scan was split into;
          0 = the monolithic whole-scan-lock path ran *)
  catchup_records : int;
      (** net-changed addresses the catch-up phase replayed from the WAL
          tail (each became one Upsert/Remove on this stream) *)
  max_lock_hold_us : float;
      (** longest single lock-hold window — a chunk's page locks or the
          catch-up's table-S — the measure the chunked protocol bounds;
          0 on the monolithic path (which holds one table lock throughout,
          its hold being the whole refresh duration) *)
}

(** {1 Retry policy}

    A refresh whose stream is lost mid-flight (link outage, dropped or
    corrupted messages) leaves the receiver on its previous consistent
    image; the manager retries with a fresh epoch under exponential
    backoff, and after [escalate_after] consecutive failures abandons
    the differential stream for a full refresh (shorter streams survive
    lossy links better, and a full stream needs no prior state). *)

type retry_policy = {
  max_attempts : int;  (** total attempts before {!Refresh_failed} *)
  backoff_us : float;  (** initial backoff *)
  backoff_multiplier : float;
  max_backoff_us : float;
  jitter : float;  (** fraction of the delay randomized, in [0, 1] *)
  escalate_after : int;  (** consecutive failures before forcing full; 0 disables *)
}

val default_retry_policy : retry_policy

exception Refresh_failed of { snapshot : string; attempts : int; reason : string }
(** The retry budget was exhausted without a committed stream.  The
    snapshot still holds its last consistent image. *)

exception Unknown_table of string
exception Unknown_snapshot of string
exception Duplicate_name of string
exception Bad_definition of string

type t

val create :
  ?retry:retry_policy ->
  ?seed:int ->
  ?batch_size:int ->
  ?chunk_entries:int ->
  ?domains:int ->
  ?arena:bool ->
  unit ->
  t
(** [seed] feeds the manager's private RNG (backoff jitter, selectivity
    sampling), keeping runs reproducible.  [batch_size] (default 1 = off)
    is the batched-transport flush threshold: with [batch_size = k > 1],
    up to [k] consecutive data messages of a refresh stream are coalesced
    into one {!Refresh_msg.Batch} frame — one link header, one sequence
    number, one checksum — cutting physical message count up to [k]-fold
    while the logical stream (and the receiver's atomic staging) is
    unchanged.  [chunk_entries] (default [max_int] = off) enables the
    chunked concurrent refresh protocol: scans of WAL-backed base tables
    run under a table {e intention} lock and process roughly
    [chunk_entries] entries per chunk under short page locks (coupled —
    the next chunk's pages are locked before the previous chunk's are
    released), letting updaters interleave between chunks; transaction
    consistency is restored by a final short table-S catch-up that
    replays the WAL tail written since the scan began.  With the default,
    refresh holds the whole-scan table lock exactly as before, and the
    transmitted stream is byte-identical.

    [domains] (default 1 = sequential) sets the refresh scan's decode
    parallelism ({!Differential.parallel}): worker domains pre-decode
    waves of pages while the coordinating domain merges them in strict
    address order, so every transmitted stream is byte-identical to the
    sequential scan's for any [domains].  The locking protocol is
    unchanged — the coordinator's table/page locks cover everything the
    workers read.  [arena] (default [domains > 1]) routes decoding
    through reused per-domain arenas (the zero-copy path); pass
    [~arena:false] to measure the parallel scan without it, or
    [~arena:true] to use the arena path on a single domain.  With the
    defaults the refresh runs the literal pre-existing sequential code
    path. *)

val txn_manager : t -> Snapdiff_txn.Txn.manager
(** The manager's transaction/lock manager.  Cooperative concurrency
    drivers (tests, the bench) begin updater transactions here so their
    table-IX/page-IX/entry-X locks contend with the refresh scan's locks
    in the one shared lock table. *)

val retry_policy : t -> retry_policy

val set_retry_policy : t -> retry_policy -> unit

val batch_size : t -> int

val set_batch_size : t -> int -> unit
(** Takes effect from the next refresh stream; values below 1 clamp to 1. *)

val chunk_entries : t -> int

val set_chunk_entries : t -> int -> unit
(** Takes effect from the next refresh; values below 1 clamp to 1.
    [max_int] restores the monolithic whole-scan-lock behaviour. *)

val domains : t -> int

val set_domains : ?arena:bool -> t -> int -> unit
(** Takes effect from the next refresh; values below 1 clamp to 1.
    [arena], when given, overrides the decode-arena setting (otherwise
    the existing override, or its [domains > 1] default, stands). *)

val set_chunk_hook : t -> (unit -> unit) option -> unit
(** Interleave point for cooperative drivers (tests, the bench): called
    after each chunk's page locks are released (and once more after the
    last chunk, before the catch-up phase), while the scan's table
    intention lock is still held.  The hook may mutate the base table —
    that is the point — but must not start another refresh of it. *)

val register_base : t -> Base_table.t -> unit
(** Makes a base table eligible as a snapshot source.  Raises
    {!Duplicate_name} if a table of that name is already registered. *)

val unregister_base : t -> string -> unit
(** Raises {!Unknown_table}, or {!Bad_definition} if snapshots still depend
    on the table. *)

val snapshots_on : t -> string -> string list
(** Names of the snapshots defined over a base table. *)

val base : t -> string -> Base_table.t
(** Raises {!Unknown_table}. *)

val base_names : t -> string list

val create_snapshot :
  t ->
  name:string ->
  base:string ->
  ?restrict:Expr.t ->
  ?projection:string list ->
  ?method_:method_spec ->
  ?link:Link.t ->
  ?tail_suppression:bool ->
  ?prune:bool ->
  ?selectivity:float ->
  ?version_strategy:Snapshot_table.Version_store.strategy ->
  ?version_retain:int ->
  unit ->
  refresh_report
(** Defines and initially populates a snapshot; the returned report is for
    the initial (always full) population.  Defaults: [restrict] accepts
    everything, [projection] keeps all user columns, [method_] is [Auto],
    [link] is a fresh in-process link, [tail_suppression] false (the
    paper's algorithm verbatim), [prune] true (differential refreshes use
    the page-summary pruned scan; the transmitted stream is identical
    either way, so this only affects scan CPU).  [selectivity] overrides the planner's
    estimate (e.g. from table statistics); without it the restriction is
    measured by scanning the base table once.  Raises {!Bad_definition} on an ill-typed
    restriction, an unknown/hidden projection column, or [Log_based]
    without a WAL; {!Duplicate_name}; {!Unknown_table}.

    [version_strategy] (default [Naive]) and [version_retain] (default 1)
    configure the snapshot's MVCC epoch ring (see
    {!Snapshot_table.read_txn} and {!read_txn}): every committed refresh
    publishes an immutable version, the last [version_retain] of which
    stay pinned-readable while refreshes keep committing. *)

val attach_snapshot :
  t ->
  name:string ->
  base:string ->
  ?restrict:Expr.t ->
  ?projection:string list ->
  ?method_:method_spec ->
  ?link:Link.t ->
  ?tail_suppression:bool ->
  ?prune:bool ->
  ?selectivity:float ->
  ?snaptime:Clock.ts ->
  ?version_strategy:Snapshot_table.Version_store.strategy ->
  ?version_retain:int ->
  Snapdiff_storage.Buffer_pool.t ->
  unit
(** Adopt a persisted snapshot replica (a file-backed store from a
    previous process) into the catalog {e without} an initial population:
    pass the [snaptime] recorded when it was persisted and the next
    refresh resumes differentially from there.  [method_] may not be
    [Ideal] (capture installed now would have missed everything since the
    persisted snaptime).  Raises {!Snapshot_table.Corrupt_snapshot} if
    the store fails the adoption integrity scan — surfaced typed, like
    {!Refresh_failed}, with the catalog left unchanged — plus the same
    definition-time exceptions as {!create_snapshot}. *)

val refresh : ?group:bool -> t -> string -> refresh_report
(** [REFRESH SNAPSHOT]: runs the snapshot's method under the base-table
    lock.  With [group:true] (default false) the named snapshot is
    refreshed together with every sibling snapshot on its base table via
    {!refresh_all}, so differential members share one scan; only the
    named snapshot's report is returned (its failure is re-raised).
    Raises {!Unknown_snapshot}. *)

val refresh_all : ?only:string list -> t -> (string * (refresh_report, exn) result) list
(** Refresh every snapshot ([only] restricts and orders the set),
    grouping by base table: all members the cost model routes to the
    differential method share {e one} page-pruned base-table scan
    ({!Snapdiff_core.Differential.refresh_group}) under one table lock —
    a page is decoded at most once per group and the deferred-mode
    fix-up runs once per scan — while the rest (full/ideal/log-based,
    or a differential group of one) refresh solo.  Every per-snapshot
    guarantee is preserved: each member's stream is framed, batched and
    checksummed on its own link under its own epoch, applied atomically,
    and committed independently; a member whose arm fails is muted for
    the rest of the scan (the others' streams are unaffected), then
    degrades to a solo refresh with retries, the group attempt counting
    as attempt 1 toward the retry budget and escalation.  Results come
    back in request order; failures are per-snapshot [Error]s, never an
    exception for the whole batch (except {!Unknown_snapshot} for a bad
    [only] name). *)

val drop_snapshot : t -> string -> unit

val snapshot_names : t -> string list

val snapshot_table : t -> string -> Snapshot_table.t
(** Read access to the replica (to query it like any table). *)

(** {1 Versioned reads}

    Snapshot-isolation reads over the snapshot's retained refresh epochs:
    a pinned read transaction observes one committed epoch's exact image
    and neither blocks nor is blocked by concurrent refresh commits. *)

val read_txn : ?epoch:int -> t -> string -> Snapshot_table.read_txn option
(** Pin a retained epoch of the named snapshot (default: latest).
    [None] if [epoch] is not retained.  Raises {!Unknown_snapshot}.
    The transaction holds a [Pinned_read] lease on the snapshot's
    retention horizon until {!Snapshot_table.release_txn}. *)

val read_txn_exn : ?epoch:int -> t -> string -> Snapshot_table.read_txn
(** {!read_txn}, but a miss raises
    {!Snapshot_table.Version_store.Epoch_not_retained} (with the
    requested epoch and the live range) instead of returning [None] —
    the typed surface the SQL [AS OF] path reports cleanly. *)

val with_read_txn :
  ?epoch:int -> t -> string -> (Snapshot_table.read_txn -> 'a) -> 'a option
(** Run [f] with a pinned transaction, releasing it afterwards (also on
    exceptions).  [None] if the epoch is not retained. *)

val snapshot_versions : t -> string -> Snapshot_table.Version_store.version_info list
(** The named snapshot's retained version ring, newest first. *)

val snapshot_version_strategy : t -> string -> Snapshot_table.Version_store.strategy

val snapshot_base : t -> string -> string
(** Name of the base table a snapshot is defined over. *)

val snapshot_method : t -> string -> method_spec

val snapshot_restrict : t -> string -> Expr.t

val snapshot_link : t -> string -> Link.t

val snapshot_request_link : t -> string -> Link.t
(** The control path (snapshot site -> base site): carries the one-time
    {!Refresh_msg.Register} at definition and a {!Refresh_msg.Request}
    with the current SnapTime at every refresh, so the full protocol cost
    is accounted. *)

val selectivity_estimate : t -> string -> float
(** The planner's current selectivity estimate for a snapshot. *)

(** {1 Scheduler hooks}

    The fleet scheduler ({!Snapdiff_fleet.Fleet}) drives refresh through
    these: it reads observed churn and the committed-refresh history to
    feed the cost model, and re-routes a snapshot's method per refresh. *)

val report_history : ?limit:int -> t -> string -> refresh_report list
(** Committed refreshes of a snapshot, most recent first, including the
    initial population; bounded (the last 32).  [limit] truncates
    further.  Raises {!Unknown_snapshot}. *)

val set_method : t -> string -> method_spec -> unit
(** Re-route a snapshot's refresh method; takes effect from the next
    refresh.  Raises {!Bad_definition} for [Log_based] without a WAL, or
    for switching to [Ideal] after creation (change capture installed now
    would have missed everything since the last refresh).  A committed
    refresh of any method advances the snapshot's log cursor, so a later
    switch to [Log_based] replays only the genuine WAL tail. *)

val mutations_since_refresh : t -> string -> int
(** Base-table operations observed since the snapshot's last committed
    refresh — the raw churn count behind
    {!Snapdiff_analysis.Model.observed_update_fraction}. *)

val observed_update_fraction : t -> string -> float
(** The distinct-update fraction the [Auto] method choice uses: mutations
    since last refresh over live entries, clamped to [\[0,1\]]. *)

val estimate_refresh_messages : t -> string -> [ `Full of float ] * [ `Differential of float ]
(** The cost model's prediction for the next refresh, given observed
    update activity — exposed for the planner tests and the CLI. *)

val change_log : t -> string -> Change_log.t option
(** The change-capture log of a base table, if any snapshot installed one. *)

(** {1 Checkpointing}

    An asynchronous fuzzy checkpoint ({!Snapdiff_wal.Checkpoint}) of a
    WAL-backed base table, followed by WAL truncation gated on the WAL's
    retention horizon ({!Snapdiff_lifecycle.Horizon}): the truncation
    floor is the checkpoint's begin LSN, lowered to the oldest LSN any
    live lease still needs — an in-flight chunked refresh's catch-up
    start (leased while its scan runs, so a checkpoint invoked from the
    chunk hook mid-refresh is safe and never triggers the scan's
    [Catchup_truncated] escalation) or a log-based snapshot's cursor on
    the same WAL. *)

type checkpoint_report = {
  cp_base : string;
  cp_begin_lsn : Snapdiff_wal.Wal.lsn;  (** redo floor the checkpoint established *)
  cp_end_lsn : Snapdiff_wal.Wal.lsn;
  cp_pages_snapshotted : int;  (** dirty pages in the begin-LSN snapshot *)
  cp_pages_flushed : int;  (** pages actually written back *)
  cp_bytes_written : int;  (** bytes written (sub-page ranges counted exactly) *)
  cp_truncated_to : Snapdiff_wal.Wal.lsn;  (** the log's new oldest retained LSN *)
  cp_log_bytes_reclaimed : int;
  cp_gated : Snapdiff_lifecycle.Lease.gating list;
      (** the live leases (scan catch-ups, log cursors) that held the
          floor below the checkpoint's begin LSN; [[]] = ungated *)
}

val checkpoint : t -> string -> checkpoint_report
(** [checkpoint t base_name] runs the fuzzy checkpoint on the named base
    table's buffer pool and WAL (yielding to the chunk hook between page
    write-backs, so cooperative updaters never stall), then truncates the
    WAL to the gated floor.  The checkpoint itself holds a [Checkpoint]
    lease while running, so a concurrent {!vacuum} cannot truncate under
    it.  Raises {!Unknown_table}, or {!Bad_definition} if the table has
    no WAL. *)

(** {1 Vacuum}

    Horizon-driven reclamation: expired snapshot versions and the WAL
    tail, in one pass.  Both consult the same {!Snapdiff_lifecycle}
    leases, so a pinned read, a live scan or a log cursor holds back the
    vacuum exactly as it holds back a checkpoint — vacuum never reclaims
    a leased epoch and never truncates below a leased LSN. *)

type snapshot_vacuum = {
  sv_snapshot : string;
  sv_examined : int;  (** eviction candidates considered *)
  sv_reclaimed : int;  (** versions freed (or would be, on a dry run) *)
  sv_zombied : int;  (** pinned candidates parked on the zombie list *)
  sv_kept : int;  (** unpinned candidates the horizon guard protected *)
  sv_bytes : int;  (** encoded bytes the freed versions held *)
}

type wal_vacuum = {
  wv_bases : string list;  (** bases sharing this physical log, sorted *)
  wv_truncated_to : Snapdiff_wal.Wal.lsn;
  wv_log_bytes_reclaimed : int;
  wv_gated : Snapdiff_lifecycle.Lease.gating list;
}

type vacuum_report = {
  vac_dry_run : bool;
  vac_snapshots : snapshot_vacuum list;  (** sorted by snapshot name *)
  vac_wals : wal_vacuum list;
}

val vacuum : ?older_than:Clock.ts -> ?dry_run:bool -> t -> vacuum_report
(** Reclaim retained snapshot versions the horizon no longer needs
    ({!Snapshot_table.vacuum} per snapshot; [older_than] vacuums any
    non-head version with an older snaptime, overriding the retained
    count), then checkpoint every WAL-backed base and truncate each
    physical log once, to the minimum checkpoint begin LSN over the bases
    sharing it, lowered by live leases.  [dry_run] (default false)
    reports what would be reclaimed without changing anything — the WAL
    half then reports the reclaimable byte span against the log's
    current end. *)
