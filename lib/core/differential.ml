open Snapdiff_storage
open Snapdiff_txn
module Metrics = Snapdiff_obs.Metrics

let m_entries_decoded = Metrics.counter Metrics.global "refresh.entries_decoded"
let m_entries_pruned = Metrics.counter Metrics.global "refresh.entries_pruned"
let m_pages_decoded = Metrics.counter Metrics.global "refresh.pages_decoded"
let m_pages_skipped = Metrics.counter Metrics.global "refresh.pages_skipped"
let m_fixup_writes = Metrics.counter Metrics.global "refresh.fixup_writes"

module Prune_cache = struct
  type entry = { token : int; page_last_qual : Addr.t option }

  type t = (int, entry) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let size = Hashtbl.length
end

type report = {
  new_snaptime : Clock.ts;
  entries_scanned : int;
  entries_skipped : int;
  pages_decoded : int;
  pages_skipped : int;
  fixup_writes : int;
  data_messages : int;
  tail_suppressed : bool;
}

let refresh ?(tail_suppression = None) ?prune ~base ~snaptime ~restrict ~project ~xmit ()
    =
  let deferred = Base_table.mode base = Base_table.Deferred in
  (* One fresh timestamp serves as both FixupTime and the new SnapTime;
     the table lock guarantees no changes slip between them. *)
  let now = Clock.tick (Base_table.clock base) in
  let data_messages = ref 0 in
  let send m =
    if Refresh_msg.is_data m then incr data_messages;
    xmit m
  in
  (* Fix-up state (deferred mode only). *)
  let expect_prev = ref Addr.zero in
  let last_addr = ref Addr.zero in
  let fixup_writes = ref 0 in
  (* Refresh state (Figure 3). *)
  let last_qual = ref Addr.zero in
  let deletion = ref false in
  let scanned = ref 0 in
  let skipped = ref 0 in
  let pages_decoded = ref 0 in
  let pages_skipped = ref 0 in
  (* A page may be skipped without decoding when its summary (exact by
     construction — any mutation would have removed it) proves that a full
     decode would neither write a fix-up nor transmit an entry, and the
     scan state can be advanced as if the decode had happened:

     - [sum_max_ts <= snaptime]: no entry on the page is changed;
     - deferred mode additionally needs [ExpectPrev = LastAddr] (a pending
       insertion before the page would force a repoint of its first entry,
       and — worse — silently re-align the chain so a later deletion of
       that insertion became undetectable) and [sum_first_prev =
       ExpectPrev] (no deletion anomaly at the page boundary);
     - a valid qualification-cache entry (same summary token) tells us the
       last qualifying address on the page, which is what [LastQual] must
       become; with the [Deletion] flag pending the page may hold no
       qualifying entry at all, since that entry would have to be
       transmitted. *)
  let try_skip page =
    match prune with
    | None -> None
    | Some cache -> (
      match Base_table.page_summary base page with
      | None -> None
      | Some s ->
        if s.Base_table.sum_live = 0 then Some None
        else if s.Base_table.sum_max_ts > snaptime then None
        else if
          deferred
          && not (!expect_prev = !last_addr && s.Base_table.sum_first_prev = !expect_prev)
        then None
        else (
          match Hashtbl.find_opt cache page with
          | Some { Prune_cache.token; page_last_qual }
            when token = s.Base_table.sum_token
                 && not (!deletion && page_last_qual <> None) ->
            Some (Some (s, page_last_qual))
          | _ -> None))
  in
  for page = 1 to Base_table.data_pages base do
    match try_skip page with
    | Some None -> incr pages_skipped  (* provably empty page *)
    | Some (Some (s, page_last_qual)) ->
      incr pages_skipped;
      skipped := !skipped + s.Base_table.sum_live;
      if deferred then begin
        expect_prev := s.Base_table.sum_last_live;
        last_addr := s.Base_table.sum_last_live
      end;
      (match page_last_qual with Some l -> last_qual := l | None -> ())
    | None ->
      incr pages_decoded;
      let live = ref 0 in
      let first_live = ref Addr.zero in
      let page_last_live = ref Addr.zero in
      let first_prev = ref Addr.zero in
      let max_ts = ref Clock.never in
      let any_null = ref false in
      let page_last_qual = ref None in
      Base_table.iter_page_stored base ~page (fun addr stored ->
          incr scanned;
          let user, ann = Annotations.split stored in
          let ann =
            if deferred then begin
              let ann', expect_prev' =
                Fixup.step ~addr ~expect_prev:!expect_prev ~last_addr:!last_addr
                  ~fixup_time:now ann
              in
              if ann' <> ann then begin
                Base_table.set_stored base addr (Annotations.with_annotations stored ann');
                incr fixup_writes
              end;
              expect_prev := expect_prev';
              last_addr := addr;
              ann'
            end
            else ann
          in
          if !live = 0 then begin
            first_live := addr;
            first_prev := Option.value ann.Annotations.prev_addr ~default:Addr.zero
          end;
          incr live;
          page_last_live := addr;
          (match ann.Annotations.timestamp with
          | Some ts -> if ts > !max_ts then max_ts := ts
          | None -> any_null := true);
          if ann.Annotations.prev_addr = None then any_null := true;
          (* A NULL timestamp cannot survive fix-up; in eager mode it would
             mean corrupted annotations — treat it as "changed" to stay safe. *)
          let changed =
            match ann.Annotations.timestamp with
            | None -> true
            | Some ts -> ts > snaptime
          in
          if restrict user then begin
            if changed || !deletion then
              send
                (Refresh_msg.Entry { addr; prev_qual = !last_qual; values = project user });
            last_qual := addr;
            page_last_qual := Some addr;
            deletion := false
          end
          else if changed then
            (* "Updated entry ==> may have qualified before update." *)
            deletion := true);
      if not !any_null then begin
        let token =
          Base_table.record_page_summary base ~page ~live:!live ~first_live:!first_live
            ~last_live:!page_last_live
            ~first_prev:(if !live = 0 then Addr.zero else !first_prev)
            ~max_ts:!max_ts
        in
        match prune with
        | Some cache ->
          Hashtbl.replace cache page
            { Prune_cache.token; page_last_qual = !page_last_qual }
        | None -> ()
      end
      else
        match prune with Some cache -> Hashtbl.remove cache page | None -> ()
  done;
  (* "Handle deletions at end of BaseTable": unconditional in the paper;
     optionally suppressed when the snapshot provably holds nothing above
     LastQual. *)
  let tail_suppressed =
    match tail_suppression with
    | Some high_water when high_water <= !last_qual -> true
    | Some _ | None -> false
  in
  if not tail_suppressed then send (Refresh_msg.Tail { last_qual = !last_qual });
  send (Refresh_msg.Snaptime now);
  Metrics.add m_entries_decoded !scanned;
  Metrics.add m_entries_pruned !skipped;
  Metrics.add m_pages_decoded !pages_decoded;
  Metrics.add m_pages_skipped !pages_skipped;
  Metrics.add m_fixup_writes !fixup_writes;
  {
    new_snaptime = now;
    entries_scanned = !scanned;
    entries_skipped = !skipped;
    pages_decoded = !pages_decoded;
    pages_skipped = !pages_skipped;
    fixup_writes = !fixup_writes;
    data_messages = !data_messages;
    tail_suppressed;
  }
