open Snapdiff_storage
open Snapdiff_txn
module Metrics = Snapdiff_obs.Metrics

let m_entries_decoded = Metrics.counter Metrics.global "refresh.entries_decoded"
let m_entries_pruned = Metrics.counter Metrics.global "refresh.entries_pruned"
let m_pages_decoded = Metrics.counter Metrics.global "refresh.pages_decoded"
let m_pages_skipped = Metrics.counter Metrics.global "refresh.pages_skipped"
let m_fixup_writes = Metrics.counter Metrics.global "refresh.fixup_writes"
let m_group_scans = Metrics.counter Metrics.global "refresh.group_scans"
let m_group_subscribers = Metrics.counter Metrics.global "refresh.group_subscribers"
let m_group_decodes_saved = Metrics.counter Metrics.global "refresh.group_decodes_saved"
let m_parallel_scans = Metrics.counter Metrics.global "refresh.parallel_scans"
let m_parallel_pages = Metrics.counter Metrics.global "refresh.parallel_pages"

module Prune_cache = struct
  type entry = { token : int; page_last_qual : Addr.t option }

  type t = (int, entry) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let size = Hashtbl.length
end

(* How to run the scan's decode work.  [par_domains > 1] turns on the
   speculative parallel decode (see [parallel_scan_to] below); [par_arena]
   routes decoding through reused per-domain {!Decode_arena}s instead of
   the allocate-per-record path.  The default — one domain, no arena — is
   the unchanged sequential scan. *)
type parallel = { par_domains : int; par_arena : bool }

type report = {
  new_snaptime : Clock.ts;
  entries_scanned : int;
  entries_skipped : int;
  pages_decoded : int;
  pages_skipped : int;
  fixup_writes : int;
  data_messages : int;
  tail_suppressed : bool;
}

type subscriber = {
  sub_snaptime : Clock.ts;
  sub_restrict : Tuple.t -> bool;
  sub_project : Tuple.t -> Tuple.t;
  sub_tail_suppression : Addr.t option;
  sub_prune : Prune_cache.t option;
  sub_xmit : Refresh_msg.t -> unit;
}

type group_report = {
  group_pages : int;
  group_pages_decoded : int;
  group_decodes_saved : int;
  group_fixup_writes : int;
  sub_reports : report array;
}

(* Per-subscriber scan state: exactly the refs a solo refresh keeps, minus
   the fix-up state, which belongs to the base table and is shared. *)
type sub_state = {
  sub : subscriber;
  mutable new_snaptime : Clock.ts;
  mutable last_qual : Addr.t;
  mutable deletion : bool;
  mutable scanned : int;
  mutable skipped : int;
  mutable st_pages_decoded : int;
  mutable st_pages_skipped : int;
  mutable data_messages : int;
  mutable page_last_qual : Addr.t option;  (* on the page being decoded *)
}

(* What one subscriber does with the current page. *)
type page_decision =
  | Decode
  | Skip_empty  (* summary proves the page holds no live entries *)
  | Skip_cached of Base_table.page_summary * Addr.t option
      (* summary + cached last qualifying address prove the decode moot *)

(* The scan as a resumable state machine: [start] ticks the clocks and
   snapshots the page count, [scan_to] advances the cursor page by page
   (suspendable at any page boundary — everything the loop used to keep in
   local refs lives in the cursor), [emit_tails] closes the address-ordered
   part of each stream, and [finish] sends the Snaptime markers and builds
   the report.  The one-shot [refresh_group] below composes them back into
   the original monolithic pass, so a caller that never suspends gets the
   exact former behaviour; the chunked refresh path in [Manager] suspends
   between page ranges (releasing its page locks) and injects catch-up
   messages between [emit_tails] and [finish]. *)
type cursor = {
  base : Base_table.t;
  deferred : bool;
  states : sub_state array;
  fixup_time : Clock.ts;
  (* Shared fix-up state (deferred mode only): it tracks the base table's
     annotation chain, not any one subscriber, so one copy serves the whole
     group.  After a decoded page's chain is repaired — or a skipped page's
     summary proves it intact — the state lands on the page's last live
     address either way, which is why per-subscriber skip decisions can all
     read the same refs. *)
  mutable expect_prev : Addr.t;
  mutable last_addr : Addr.t;
  mutable fixup_writes : int;
  mutable pages_decoded : int;
  pages : int;  (* data pages at scan start; later growth is catch-up's job *)
  mutable next_page : int;
  mutable tails_sent : bool;
  par_domains : int;  (* decode parallelism; 1 = sequential scan *)
  par_arena : bool;  (* decode through reused arenas *)
  mutable arena : Decode_arena.t option;  (* coordinator's own arena *)
}

let start ?(parallel : parallel option) ~base subs =
  let n_subs = Array.length subs in
  if n_subs = 0 then invalid_arg "Differential.refresh_group: empty group";
  let deferred = Base_table.mode base = Base_table.Deferred in
  let states =
    Array.map
      (fun sub ->
        { sub; new_snaptime = Clock.never; last_qual = Addr.zero; deletion = false;
          scanned = 0; skipped = 0; st_pages_decoded = 0; st_pages_skipped = 0;
          data_messages = 0; page_last_qual = None })
      subs
  in
  (* One clock tick per subscriber, in subscriber order: subscriber [i]'s
     new SnapTime is exactly the timestamp the i-th of a sequence of solo
     refreshes (same order, same table lock) would have drawn.  The first
     tick doubles as the shared FixupTime — in a solo sequence the first
     refresher is the one whose fix-up pass stamps every disturbed entry,
     and later refreshers find the fields already restored. *)
  for i = 0 to n_subs - 1 do
    states.(i).new_snaptime <- Clock.tick (Base_table.clock base)
  done;
  {
    base;
    deferred;
    states;
    fixup_time = states.(0).new_snaptime;
    expect_prev = Addr.zero;
    last_addr = Addr.zero;
    fixup_writes = 0;
    pages_decoded = 0;
    pages = Base_table.data_pages base;
    next_page = 1;
    tails_sent = false;
    par_domains =
      (match parallel with
      | Some p -> max 1 (min p.par_domains Snapdiff_par.Par.max_domains)
      | None -> 1);
    par_arena = (match parallel with Some p -> p.par_arena | None -> false);
    arena = None;
  }

let pages c = c.pages

let next_page c = c.next_page

let send st m =
  if Refresh_msg.is_data m then st.data_messages <- st.data_messages + 1;
  st.sub.sub_xmit m

(* A subscriber may skip a page under exactly the solo conditions: the
   summary proves nothing on the page is newer than its SnapTime, the
   (shared) chain state shows no anomaly pending at the boundary, and its
   own qualification cache supplies the page's last qualifying address.
   The page is decoded iff any subscriber cannot skip it. *)
let decide c st page =
  match st.sub.sub_prune with
  | None -> Decode
  | Some cache -> (
    match Base_table.page_summary c.base page with
    | None -> Decode
    | Some s ->
      if s.Base_table.sum_live = 0 then Skip_empty
      else if s.Base_table.sum_max_ts > st.sub.sub_snaptime then Decode
      else if
        c.deferred
        && not
             (c.expect_prev = c.last_addr
             && s.Base_table.sum_first_prev = c.expect_prev)
      then Decode
      else (
        match Hashtbl.find_opt cache page with
        | Some { Prune_cache.token; page_last_qual }
          when token = s.Base_table.sum_token
               && not (st.deletion && page_last_qual <> None) ->
          Skip_cached (s, page_last_qual)
        | _ -> Decode))

let apply_skip st = function
  | Skip_empty -> st.st_pages_skipped <- st.st_pages_skipped + 1
  | Skip_cached (s, page_last_qual) ->
    st.st_pages_skipped <- st.st_pages_skipped + 1;
    st.skipped <- st.skipped + s.Base_table.sum_live;
    (match page_last_qual with Some l -> st.last_qual <- l | None -> ())
  | Decode -> assert false

(* The per-page scan body, generalized over where the decoded entries come
   from: [entries] feeds [(addr, stored, user, ann)] in ascending address
   order — straight off the page, through a decode arena, or replayed from
   a buffer a worker domain pre-decoded.  Everything stateful (decisions,
   fix-up, LastQual/Deletion, summaries, prune caches) happens here, on the
   calling domain, in address order — which is why every decode source
   yields byte-identical subscriber streams. *)
let scan_page_with c page entries =
  let base = c.base in
  let deferred = c.deferred in
  let states = c.states in
  let decisions = Array.map (fun st -> decide c st page) states in
  let need_decode =
    Array.exists (function Decode -> true | _ -> false) decisions
  in
  if not need_decode then begin
    (* Nobody needs the page decoded; advance every subscriber's state by
       its own skip rule and the shared chain state once from the summary
       (all cached skips saw the same summary). *)
    Array.iteri (fun i st -> apply_skip st decisions.(i)) states;
    (* All skip decisions on one page agree on the summary (it is shared
       state): either the page is provably empty — chain untouched — or
       every subscriber saw the same cached-skip summary, whose last live
       address is where an actual decode would have left the chain. *)
    if deferred then
      match
        Array.find_opt (function Skip_cached _ -> true | _ -> false) decisions
      with
      | Some (Skip_cached (s, _)) ->
        c.expect_prev <- s.Base_table.sum_last_live;
        c.last_addr <- s.Base_table.sum_last_live
      | _ -> ()
  end
  else begin
    (* Decode once; feed the entries to exactly the subscribers that need
       them, while the skippers advance by their fast path. *)
    c.pages_decoded <- c.pages_decoded + 1;
    Array.iteri
      (fun i st ->
        match decisions.(i) with
        | Decode ->
          st.st_pages_decoded <- st.st_pages_decoded + 1;
          st.page_last_qual <- None
        | d -> apply_skip st d)
      states;
    let live = ref 0 in
    let first_live = ref Addr.zero in
    let page_last_live = ref Addr.zero in
    let first_prev = ref Addr.zero in
    let max_ts = ref Clock.never in
    let any_null = ref false in
    entries (fun addr stored user ann ->
        let ann =
          if deferred then begin
            let ann', expect_prev' =
              Fixup.step ~addr ~expect_prev:c.expect_prev ~last_addr:c.last_addr
                ~fixup_time:c.fixup_time ann
            in
            if ann' <> ann then begin
              Base_table.set_stored base addr (Annotations.with_annotations stored ann');
              c.fixup_writes <- c.fixup_writes + 1
            end;
            c.expect_prev <- expect_prev';
            c.last_addr <- addr;
            ann'
          end
          else ann
        in
        if !live = 0 then begin
          first_live := addr;
          first_prev := Option.value ann.Annotations.prev_addr ~default:Addr.zero
        end;
        incr live;
        page_last_live := addr;
        (match ann.Annotations.timestamp with
        | Some ts -> if ts > !max_ts then max_ts := ts
        | None -> any_null := true);
        if ann.Annotations.prev_addr = None then any_null := true;
        Array.iteri
          (fun i st ->
            match decisions.(i) with
            | Decode ->
              st.scanned <- st.scanned + 1;
              (* A NULL timestamp cannot survive fix-up; in eager mode it
                 would mean corrupted annotations — treat as changed. *)
              let changed =
                match ann.Annotations.timestamp with
                | None -> true
                | Some ts -> ts > st.sub.sub_snaptime
              in
              if st.sub.sub_restrict user then begin
                if changed || st.deletion then
                  send st
                    (Refresh_msg.Entry
                       { addr; prev_qual = st.last_qual;
                         values = st.sub.sub_project user });
                st.last_qual <- addr;
                st.page_last_qual <- Some addr;
                st.deletion <- false
              end
              else if changed then
                (* "Updated entry ==> may have qualified before update." *)
                st.deletion <- true
            | _ -> ())
          states);
    if not !any_null then begin
      let token =
        Base_table.record_page_summary base ~page ~live:!live ~first_live:!first_live
          ~last_live:!page_last_live
          ~first_prev:(if !live = 0 then Addr.zero else !first_prev)
          ~max_ts:!max_ts
      in
      Array.iteri
        (fun i st ->
          match (decisions.(i), st.sub.sub_prune) with
          | Decode, Some cache ->
            Hashtbl.replace cache page
              { Prune_cache.token; page_last_qual = st.page_last_qual }
          | _ -> ())
        states
    end
    else
      Array.iteri
        (fun i st ->
          match (decisions.(i), st.sub.sub_prune) with
          | Decode, Some cache -> Hashtbl.remove cache page
          | _ -> ())
        states
  end

(* Entries decoded on the calling domain, straight from the page (the
   pre-refactor decode) or through the cursor's reused arena. *)
let sequential_entries c page k =
  if c.par_arena then begin
    let arena =
      match c.arena with
      | Some a -> a
      | None ->
        let a = Decode_arena.create () in
        c.arena <- Some a;
        a
    in
    Base_table.iter_page_stored_arena c.base ~arena ~page (fun addr stored ->
        let user, ann = Annotations.split stored in
        k addr stored user ann)
  end
  else
    Base_table.iter_page_stored c.base ~page (fun addr stored ->
        let user, ann = Annotations.split stored in
        k addr stored user ann)

let scan_page c page = scan_page_with c page (sequential_entries c page)

(* ---- parallel decode ----------------------------------------------- *)

(* The parallel scan is {e speculative decode + sequential merge}: worker
   domains pre-decode a wave of pages into private buffers, then the
   calling domain merges the wave page by page through the exact
   sequential state machine above, replaying each pre-decoded buffer in
   address order.  Workers only read (page pins through the domain-safe
   buffer pool, decode, annotation split); every write — fix-up,
   summaries, prune caches, message emission — stays on the merging
   domain.  Two facts make the pre-decoded content exactly what the
   sequential scan would have decoded: fix-up writes touch only the entry
   being visited, so merging pages [< p] never mutates page [p]; and the
   sequential decode itself snapshots a page before applying its own
   fix-up writes, so pre-fix-up content is what it decodes too.

   [speculate_decode] guesses, from summary/prune state at wave start,
   which pages the merge will need decoded.  It may guess wrong in either
   direction: a page decoded in vain is discarded, and a page the merge
   needs but no worker decoded (the deferred chain-anomaly and pending-
   deletion conditions depend on merge-time state) falls back to an
   inline sequential decode.  Speculation is thus purely a performance
   matter — correctness never depends on it. *)

let worker_arena_key = Domain.DLS.new_key (fun () -> Decode_arena.create ())

let speculate_decode c page =
  match Base_table.page_summary c.base page with
  | None -> true
  | Some s ->
    s.Base_table.sum_live > 0
    && Array.exists
         (fun st ->
           match st.sub.sub_prune with
           | None -> true
           | Some cache ->
             s.Base_table.sum_max_ts > st.sub.sub_snaptime
             ||
             (match Hashtbl.find_opt cache page with
             | Some { Prune_cache.token; _ } -> token <> s.Base_table.sum_token
             | None -> true))
         c.states

(* Runs on a worker domain: decode one page into a buffer.  A decode
   failure yields no buffer rather than an exception — the merge may
   legitimately skip a page speculation chose to decode, and only a page
   the merge actually decodes is allowed to raise. *)
let decode_page_task c page () =
  let each acc addr stored =
    let user, ann = Annotations.split stored in
    (addr, stored, user, ann) :: acc
  in
  match
    let acc = ref [] in
    (if c.par_arena then
       let arena = Domain.DLS.get worker_arena_key in
       Base_table.iter_page_stored_arena c.base ~arena ~page (fun addr stored ->
           acc := each !acc addr stored)
     else
       Base_table.iter_page_stored c.base ~page (fun addr stored ->
           acc := each !acc addr stored));
    Array.of_list (List.rev !acc)
  with
  | buf -> Some buf
  | exception _ -> None

let buffered_entries buf k =
  Array.iter (fun (addr, stored, user, ann) -> k addr stored user ann) buf

(* Pages a wave hands to the pool per domain.  Large enough to amortize
   batch dispatch, small enough to bound how many decoded pages are held
   in memory at once (waves, not the whole table). *)
let wave_span = 32

let parallel_scan_to c ~upto =
  Metrics.incr m_parallel_scans;
  while c.next_page <= upto do
    let first = c.next_page in
    let last = min upto (first + (c.par_domains * wave_span) - 1) in
    let todo = ref [] in
    for page = last downto first do
      if speculate_decode c page then todo := page :: !todo
    done;
    let todo = Array.of_list !todo in
    let bufs = Array.make (last - first + 1) None in
    let results =
      Snapdiff_par.Par.run ~domains:c.par_domains
        (Array.map (fun page -> decode_page_task c page) todo)
    in
    Array.iteri (fun i buf -> bufs.(todo.(i) - first) <- buf) results;
    for page = first to last do
      (match bufs.(page - first) with
      | Some buf ->
        Metrics.incr m_parallel_pages;
        scan_page_with c page (buffered_entries buf)
      | None -> scan_page c page);
      c.next_page <- page + 1
    done
  done

let scan_to c ~last_page =
  let upto = min last_page c.pages in
  if c.par_domains > 1 && c.next_page <= upto then parallel_scan_to c ~upto
  else
    while c.next_page <= upto do
      scan_page c c.next_page;
      c.next_page <- c.next_page + 1
    done

let emit_tails c =
  if not c.tails_sent then begin
    c.tails_sent <- true;
    Array.iter
      (fun st ->
        (* "Handle deletions at end of BaseTable": unconditional in the
           paper; optionally suppressed when the snapshot provably holds
           nothing above LastQual. *)
        let tail_suppressed =
          match st.sub.sub_tail_suppression with
          | Some high_water when high_water <= st.last_qual -> true
          | Some _ | None -> false
        in
        if not tail_suppressed then
          send st (Refresh_msg.Tail { last_qual = st.last_qual }))
      c.states
  end

let finish c =
  scan_to c ~last_page:c.pages;
  emit_tails c;
  let n_subs = Array.length c.states in
  let sub_reports =
    Array.mapi
      (fun i st ->
        let tail_suppressed =
          match st.sub.sub_tail_suppression with
          | Some high_water when high_water <= st.last_qual -> true
          | Some _ | None -> false
        in
        send st (Refresh_msg.Snaptime st.new_snaptime);
        {
          new_snaptime = st.new_snaptime;
          entries_scanned = st.scanned;
          entries_skipped = st.skipped;
          pages_decoded = st.st_pages_decoded;
          pages_skipped = st.st_pages_skipped;
          (* The group's fix-up writes are charged to the first subscriber:
             in the equivalent solo sequence the first refresher's pass is
             the one that restores every disturbed annotation, and the rest
             find nothing left to write. *)
          fixup_writes = (if i = 0 then c.fixup_writes else 0);
          data_messages = st.data_messages;
          tail_suppressed;
        })
      c.states
  in
  let per_sub_decodes =
    Array.fold_left (fun acc st -> acc + st.st_pages_decoded) 0 c.states
  in
  let decodes_saved = per_sub_decodes - c.pages_decoded in
  Metrics.add m_entries_decoded
    (Array.fold_left (fun acc st -> acc + st.scanned) 0 c.states);
  Metrics.add m_entries_pruned
    (Array.fold_left (fun acc st -> acc + st.skipped) 0 c.states);
  Metrics.add m_pages_decoded c.pages_decoded;
  Metrics.add m_pages_skipped (c.pages - c.pages_decoded);
  Metrics.add m_fixup_writes c.fixup_writes;
  if n_subs > 1 then begin
    Metrics.incr m_group_scans;
    Metrics.add m_group_subscribers n_subs;
    Metrics.add m_group_decodes_saved decodes_saved
  end;
  {
    group_pages = c.pages;
    group_pages_decoded = c.pages_decoded;
    group_decodes_saved = decodes_saved;
    group_fixup_writes = c.fixup_writes;
    sub_reports;
  }

let refresh_group ?parallel ~base subs = finish (start ?parallel ~base subs)

(* The solo scan is a group of one: same code path, so the "group stream =
   solo stream" invariant is structural for the degenerate case and the two
   can never drift apart. *)
let refresh ?(tail_suppression = None) ?prune ?parallel ~base ~snaptime ~restrict
    ~project ~xmit () =
  let g =
    refresh_group ?parallel ~base
      [| { sub_snaptime = snaptime; sub_restrict = restrict; sub_project = project;
           sub_tail_suppression = tail_suppression; sub_prune = prune;
           sub_xmit = xmit } |]
  in
  g.sub_reports.(0)
