(** The base-table fix-up algorithm (paper Figure 7).

    Under deferred maintenance, base operations leave NULL annotations and
    delete entries without a trace.  One address-order scan restores the
    fields:

    - NULL [PrevAddr] — the entry was {e inserted}: set [PrevAddr] to the
      previous entry's address and stamp [TimeStamp];
    - NULL [TimeStamp] (non-NULL [PrevAddr]) — the entry was {e updated}:
      stamp [TimeStamp];
    - [PrevAddr <> ExpectPrev] — one or more entries {e deleted} before
      this one: repoint [PrevAddr] and stamp [TimeStamp] ("detecting
      deletions ... by detecting anomalies in the empty region information
      in the PrevAddr fields is central to the differential refresh
      algorithm");
    - [PrevAddr = ExpectPrev <> LastAddr] — entries were inserted just
      before this one: repoint [PrevAddr] only (no stamp).

    [ExpectPrev] tracks the last {e non-newly-inserted} entry, [LastAddr]
    the last entry of any kind.

    The standalone pass exists for tests and for offline "re-annotation";
    refresh normally runs the combined single pass in {!Differential}. *)

open Snapdiff_txn

type stats = {
  scanned : int;  (** entries decoded *)
  skipped : int;  (** entries proven clean by a page summary, not decoded *)
  writes : int;  (** entries whose annotation fields were rewritten *)
}

val run : Base_table.t -> fixup_time:Clock.ts -> stats
(** One full pass.  [fixup_time] is the time stamped into every restored
    [TimeStamp] ("only snapshot refresh events need to occur at distinct
    times, [so] we can use the current (base table) time").

    The pass is page-wise: a page whose {!Base_table.page_summary} is
    still present (hence exact, with no NULL annotations and an intact
    internal PrevAddr chain) is skipped without decoding when the scan
    state at its boundary matches — [ExpectPrev = LastAddr] (no pending
    insertion repoint) and the page's [sum_first_prev] equals
    [ExpectPrev] (no pending deletion anomaly).  Pages it does decode get
    a fresh summary recorded, so repeated fix-ups over a quiescent table
    cost O(pages), not O(entries). *)

val step :
  addr:Snapdiff_storage.Addr.t ->
  expect_prev:Snapdiff_storage.Addr.t ->
  last_addr:Snapdiff_storage.Addr.t ->
  fixup_time:Clock.ts ->
  Annotations.t ->
  Annotations.t * Snapdiff_storage.Addr.t
(** The per-entry state transition, exposed for the combined pass and for
    direct unit testing against the pseudocode: returns the corrected
    annotations and the new [ExpectPrev].  The caller passes the entry's
    address and current annotations and is responsible for [LastAddr]
    bookkeeping. *)
