open Snapdiff_storage
open Snapdiff_txn

type stats = {
  scanned : int;
  skipped : int;
  writes : int;
}

(* Figure 7, body of the scan loop, for the entry at [addr] whose current
   annotations are [ann].  [expect_prev] is the address of the last
   non-newly-inserted entry seen; [last_addr] the address of the last entry
   of any kind.  Returns the corrected annotations and the new ExpectPrev. *)
let step ~addr ~expect_prev ~last_addr ~fixup_time (ann : Annotations.t) =
  match ann.Annotations.prev_addr with
  | None ->
    (* Inserted entry: point it at its predecessor and stamp it.  It does
       NOT become ExpectPrev — the next entry's stored PrevAddr still
       refers to the pre-insertion neighbourhood. *)
    ( { Annotations.prev_addr = Some last_addr; timestamp = Some fixup_time },
      expect_prev )
  | Some prev ->
    let ts =
      match ann.Annotations.timestamp with
      | None -> Some fixup_time  (* updated entry *)
      | some -> some
    in
    let prev_addr, ts =
      if prev <> expect_prev then
        (* Deletion(s) between ExpectPrev and this entry: the empty region
           before this entry grew, so both fields change. *)
        (Some last_addr, Some fixup_time)
      else if prev <> last_addr then
        (* Only insertions between: repoint without stamping. *)
        (Some last_addr, ts)
      else (Some prev, ts)
    in
    ({ Annotations.prev_addr; timestamp = ts }, addr)

(* A page with a summary may be skipped when doing so provably leaves the
   same annotation state a full decode would: the summary's existence means
   no NULL annotations and an internally intact PrevAddr chain (it was
   recorded by a scan that had just restored the page, and any mutation
   since would have removed it), so no step on the page can write — as long
   as the scan state at the page boundary matches what the page's entries
   expect.  [ExpectPrev = LastAddr] rules out a pending insertion before
   the page (which would require repointing the first entry), and
   [first_prev = ExpectPrev] rules out a deletion anomaly at the boundary. *)
let can_skip (s : Base_table.page_summary) ~expect_prev ~last_addr =
  s.Base_table.sum_live = 0
  || (expect_prev = last_addr && s.Base_table.sum_first_prev = expect_prev)

let run base ~fixup_time =
  let expect_prev = ref Addr.zero in
  let last_addr = ref Addr.zero in
  let scanned = ref 0 in
  let skipped = ref 0 in
  let writes = ref 0 in
  for page = 1 to Base_table.data_pages base do
    match Base_table.page_summary base page with
    | Some s when can_skip s ~expect_prev:!expect_prev ~last_addr:!last_addr ->
      skipped := !skipped + s.Base_table.sum_live;
      if s.Base_table.sum_live > 0 then begin
        expect_prev := s.Base_table.sum_last_live;
        last_addr := s.Base_table.sum_last_live
      end
    | _ ->
      let entry_last_addr = !last_addr in
      let live = ref 0 in
      let first_live = ref Addr.zero in
      let max_ts = ref Clock.never in
      Base_table.iter_page_stored base ~page (fun addr stored ->
          incr scanned;
          let _, ann = Annotations.split stored in
          let ann', expect_prev' =
            step ~addr ~expect_prev:!expect_prev ~last_addr:!last_addr ~fixup_time ann
          in
          if ann' <> ann then begin
            Base_table.set_stored base addr (Annotations.with_annotations stored ann');
            incr writes
          end;
          expect_prev := expect_prev';
          last_addr := addr;
          if !live = 0 then first_live := addr;
          incr live;
          (match ann'.Annotations.timestamp with
          | Some ts when ts > !max_ts -> max_ts := ts
          | _ -> ()));
      (* The page was just fully restored, so this summary is exact; the
         first entry's corrected PrevAddr always equals LastAddr as it
         stood at the page boundary. *)
      ignore
        (Base_table.record_page_summary base ~page ~live:!live ~first_live:!first_live
           ~last_live:(if !live = 0 then Addr.zero else !last_addr)
           ~first_prev:(if !live = 0 then Addr.zero else entry_last_addr)
           ~max_ts:!max_ts
          : int)
  done;
  { scanned = !scanned; skipped = !skipped; writes = !writes }
