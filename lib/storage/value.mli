(** Typed field values.

    A value is the contents of one column of one tuple.  SQL-style
    three-valued NULL semantics live in {!Snapdiff_expr}; here NULL is just a
    distinguished constant that every column type admits when its schema
    marks it nullable.  The binary codec is used by the slotted page layout,
    the write-ahead log, and the network message format. *)

type ty = Tint | Tfloat | Tstring | Tbool

type t =
  | Null
  | Int of int64
  | Float of float
  | Str of string
  | Bool of bool

val type_of : t -> ty option
(** [None] for [Null]. *)

val ty_name : ty -> string

val has_type : t -> ty -> bool
(** [Null] has every type. *)

val is_null : t -> bool

val compare : t -> t -> int
(** Total order used by indexes and sorting: [Null] sorts first; values of
    different types order by type tag (indexes never mix types in practice
    because schemas are typed). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(* Convenience constructors. *)
val int : int -> t
val str : string -> t

(** {1 Binary codec}

    Format: 1 tag byte, then a type-dependent payload.  Strings are a
    little-endian [u32] length followed by the bytes. *)

(* Codec tag bytes, exposed so in-place cursor readers ({!Codec.Cursor})
   can decode values without round-tripping through {!decode}'s
   offset-pair allocation. *)
val tag_null : char
val tag_int : char
val tag_float : char
val tag_str : char
val tag_bool : char

val encoded_size : t -> int

val encode : Buffer.t -> t -> unit

val decode : bytes -> int -> t * int
(** [decode b off] returns the value and the offset just past it.
    Raises [Failure] on a corrupt tag or truncated payload. *)
