let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let add_u16 buf v =
  add_u8 buf v;
  add_u8 buf (v lsr 8)

let add_u32 buf v =
  add_u16 buf v;
  add_u16 buf (v lsr 16)

let add_i64 buf i =
  for k = 0 to 7 do
    add_u8 buf (Int64.to_int (Int64.shift_right_logical i (8 * k)))
  done

let add_int buf i = add_i64 buf (Int64.of_int i)

let add_string buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let add_tuple = Tuple.encode

let need b off n = if off + n > Bytes.length b then failwith "Codec: truncated"

let u8 b off =
  need b off 1;
  (Char.code (Bytes.get b off), off + 1)

let u16 b off =
  need b off 2;
  (Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8), off + 2)

let u32 b off =
  let lo, off = u16 b off in
  let hi, off = u16 b off in
  (lo lor (hi lsl 16), off)

let i64 b off =
  need b off 8;
  let acc = ref 0L in
  for k = 7 downto 0 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code (Bytes.get b (off + k))))
  done;
  (!acc, off + 8)

let int b off =
  let v, off = i64 b off in
  (Int64.to_int v, off)

let string b off =
  let len, off = u32 b off in
  need b off len;
  (Bytes.sub_string b off len, off + len)

let tuple = Tuple.decode

(* In-place readers over a byte window.  The offset-pair readers above
   allocate a (value, offset) tuple per field and force callers to
   Bytes.sub each record out of its page first; a cursor reads straight
   from the shared page (or arena) image and advances a mutable position,
   so the decode hot loop allocates only the values themselves.  A cursor
   is meant to be created once and re-pointed with [set] per record. *)
module Cursor = struct
  type t = { mutable buf : bytes; mutable pos : int; mutable limit : int }

  let create () = { buf = Bytes.empty; pos = 0; limit = 0 }

  let set c b ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length b then
      invalid_arg "Codec.Cursor.set: window out of bounds";
    c.buf <- b;
    c.pos <- pos;
    c.limit <- pos + len

  let pos c = c.pos

  let at_end c = c.pos >= c.limit

  let need c n = if c.pos + n > c.limit then failwith "Codec: truncated"

  let skip c n =
    if n < 0 then invalid_arg "Codec.Cursor.skip: negative";
    need c n;
    c.pos <- c.pos + n

  let u8 c =
    need c 1;
    let v = Char.code (Bytes.get c.buf c.pos) in
    c.pos <- c.pos + 1;
    v

  let u16 c =
    need c 2;
    let v = Char.code (Bytes.get c.buf c.pos)
            lor (Char.code (Bytes.get c.buf (c.pos + 1)) lsl 8) in
    c.pos <- c.pos + 2;
    v

  let u32 c =
    need c 4;
    let p = c.pos in
    let v = Char.code (Bytes.get c.buf p)
            lor (Char.code (Bytes.get c.buf (p + 1)) lsl 8)
            lor (Char.code (Bytes.get c.buf (p + 2)) lsl 16)
            lor (Char.code (Bytes.get c.buf (p + 3)) lsl 24) in
    c.pos <- p + 4;
    v

  let i64 c =
    need c 8;
    let v = Bytes.get_int64_le c.buf c.pos in
    c.pos <- c.pos + 8;
    v

  let int c = Int64.to_int (i64 c)

  let string c =
    let len = u32 c in
    need c len;
    let s = Bytes.sub_string c.buf c.pos len in
    c.pos <- c.pos + len;
    s

  let value c =
    need c 1;
    let tag = Bytes.get c.buf c.pos in
    c.pos <- c.pos + 1;
    if tag = Value.tag_null then Value.Null
    else if tag = Value.tag_int then Value.Int (i64 c)
    else if tag = Value.tag_float then Value.Float (Int64.float_of_bits (i64 c))
    else if tag = Value.tag_str then Value.Str (string c)
    else if tag = Value.tag_bool then Value.Bool (u8 c <> 0)
    else failwith "Value.decode: bad tag"

  let tuple c =
    let n = u16 c in
    if n = 0 then [||]
    else begin
      let t = Array.make n Value.Null in
      (* Explicit loop: the decode is stateful, so evaluation order must
         be the field order. *)
      for i = 0 to n - 1 do
        t.(i) <- value c
      done;
      t
    end
end
