(* [ranges] tracks the byte spans modified since the last
   {!reset_dirty_ranges} as a short sorted list of disjoint [lo, hi)
   pairs: every mutation funnels through the primitives below, so a page
   adopted from a store image differs from that image only inside the
   tracked spans.  The buffer pool exploits this to write back sub-page
   ranges instead of whole pages. *)
type t = { data : bytes; size : int; mutable ranges : (int * int) list }

let min_page_size = 64
let max_page_size = 32768

let header_size = 4
let slot_entry_size = 4

(* Cap the list so tracking stays O(1)-ish per mutation; on overflow the
   two closest spans are merged (over-approximation is always safe). *)
let max_tracked_ranges = 4

let touch t off len =
  if len > 0 then begin
    let lo = off and hi = off + len in
    let rec ins = function
      | [] -> [ (lo, hi) ]
      | (a, b) :: rest ->
        if hi < a then (lo, hi) :: (a, b) :: rest
        else if b < lo then (a, b) :: ins rest
        else absorb (min a lo) (max b hi) rest
    and absorb lo hi = function
      | (a, b) :: rest when a <= hi -> absorb lo (max b hi) rest
      | rest -> (lo, hi) :: rest
    in
    let rs = ins t.ranges in
    t.ranges <-
      (if List.length rs <= max_tracked_ranges then rs
       else begin
         (* Merge the pair separated by the smallest gap. *)
         let besti = ref 0 and best = ref max_int in
         let rec scan i = function
           | (_, b) :: ((c, _) :: _ as rest) ->
             if c - b < !best then begin
               best := c - b;
               besti := i
             end;
             scan (i + 1) rest
           | _ -> ()
         in
         scan 0 rs;
         let rec merge i = function
           | (a, b) :: (_, d) :: rest when i = 0 -> (a, max b d) :: rest
           | x :: rest -> x :: merge (i - 1) rest
           | [] -> []
         in
         merge !besti rs
       end)
  end

let dirty_ranges t = List.map (fun (lo, hi) -> (lo, hi - lo)) t.ranges

let dirty_bytes t = List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 t.ranges

let reset_dirty_ranges t = t.ranges <- []

let get_u16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set_u16 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff))

let nslots t = get_u16 t.data 0
let free_ptr t = get_u16 t.data 2

let set_nslots t v =
  set_u16 t.data 0 v;
  touch t 0 2

let set_free_ptr t v =
  set_u16 t.data 2 v;
  touch t 2 2

let slot_off i = header_size + (slot_entry_size * i)
let slot_offset t i = get_u16 t.data (slot_off i)
let slot_length t i = get_u16 t.data (slot_off i + 2)

let set_slot t i ~off ~len =
  set_u16 t.data (slot_off i) off;
  set_u16 t.data (slot_off i + 2) len;
  touch t (slot_off i) slot_entry_size

let create ~page_size =
  if page_size < min_page_size || page_size > max_page_size then
    invalid_arg "Page.create: bad page size";
  let t = { data = Bytes.make page_size '\000'; size = page_size; ranges = [] } in
  set_nslots t 0;
  set_free_ptr t page_size;
  t

let page_size t = t.size

let of_bytes data =
  let t = { data; size = Bytes.length data; ranges = [] } in
  if t.size < min_page_size || t.size > max_page_size then
    failwith "Page.of_bytes: bad page size";
  (* A freshly-allocated page arrives zeroed: normalize it to a valid empty
     page (free_ptr = page end). *)
  if nslots t = 0 && free_ptr t = 0 then set_free_ptr t t.size;
  let n = nslots t in
  if header_size + (slot_entry_size * n) > free_ptr t || free_ptr t > t.size then
    failwith "Page.of_bytes: corrupt header";
  t

let bytes t = t.data

let slot_is_live t i = i >= 0 && i < nslots t && slot_offset t i <> 0

let live_records t =
  let n = ref 0 in
  for i = 0 to nslots t - 1 do
    if slot_offset t i <> 0 then incr n
  done;
  !n

let dir_end t = header_size + (slot_entry_size * nslots t)

let live_bytes t =
  let total = ref 0 in
  for i = 0 to nslots t - 1 do
    if slot_offset t i <> 0 then total := !total + slot_length t i
  done;
  !total

let first_empty_slot t =
  let n = nslots t in
  let rec go i = if i >= n then None else if slot_offset t i = 0 then Some i else go (i + 1) in
  go 0

let free_space_for_insert t =
  let slack = t.size - dir_end t - live_bytes t in
  let need_dir = match first_empty_slot t with Some _ -> 0 | None -> slot_entry_size in
  max 0 (slack - need_dir)

let compact t =
  (* Copy live records, highest offset first, back to the end of the page. *)
  let live =
    let acc = ref [] in
    for i = 0 to nslots t - 1 do
      if slot_offset t i <> 0 then acc := (i, slot_offset t i, slot_length t i) :: !acc
    done;
    List.sort (fun (_, o1, _) (_, o2, _) -> Int.compare o2 o1) !acc
  in
  let ptr = ref t.size in
  List.iter
    (fun (i, off, len) ->
      let record = Bytes.sub t.data off len in
      ptr := !ptr - len;
      Bytes.blit record 0 t.data !ptr len;
      set_slot t i ~off:!ptr ~len)
    live;
  touch t !ptr (t.size - !ptr);
  set_free_ptr t !ptr

let contiguous_free t = free_ptr t - dir_end t

let insert t record =
  let len = Bytes.length record in
  if len = 0 then invalid_arg "Page.insert: empty record";
  if len > t.size - header_size - slot_entry_size then
    invalid_arg "Page.insert: record larger than page capacity";
  let slot, dir_need =
    match first_empty_slot t with
    | Some i -> (i, 0)
    | None -> (nslots t, slot_entry_size)
  in
  if slot > 0xffff then None
  else if t.size - dir_end t - live_bytes t - dir_need < len then None
  else begin
    if contiguous_free t - dir_need < len then compact t;
    if dir_need > 0 then set_nslots t (nslots t + 1);
    let off = free_ptr t - len in
    Bytes.blit record 0 t.data off len;
    touch t off len;
    set_free_ptr t off;
    set_slot t slot ~off ~len;
    Some slot
  end

let insert_at t slot record =
  let len = Bytes.length record in
  if len = 0 then invalid_arg "Page.insert_at: empty record";
  if slot < 0 || slot > 0xffff then invalid_arg "Page.insert_at: bad slot";
  if slot_is_live t slot then false
  else begin
    let extra_slots = max 0 (slot + 1 - nslots t) in
    let dir_need = slot_entry_size * extra_slots in
    if t.size - dir_end t - live_bytes t - dir_need < len then false
    else begin
      if contiguous_free t - dir_need < len then compact t;
      if extra_slots > 0 then begin
        (* New directory entries must be zeroed (empty). *)
        for i = nslots t to slot do
          set_slot t i ~off:0 ~len:0
        done;
        set_nslots t (slot + 1)
      end;
      let off = free_ptr t - len in
      Bytes.blit record 0 t.data off len;
      touch t off len;
      set_free_ptr t off;
      set_slot t slot ~off ~len;
      true
    end
  end

let read t i =
  if slot_is_live t i then Some (Bytes.sub t.data (slot_offset t i) (slot_length t i))
  else None

let delete t i =
  if slot_is_live t i then begin
    set_slot t i ~off:0 ~len:0;
    true
  end
  else false

let update t i record =
  if not (slot_is_live t i) then false
  else begin
    let len = Bytes.length record in
    if len = 0 then invalid_arg "Page.update: empty record";
    let old_len = slot_length t i in
    if len <= old_len then begin
      (* Rewrite in place; the record shrinks at its original offset. *)
      let off = slot_offset t i in
      Bytes.blit record 0 t.data off len;
      touch t off len;
      set_slot t i ~off ~len;
      true
    end
    else begin
      let slack = t.size - dir_end t - live_bytes t in
      if slack < len - old_len then false
      else begin
        set_slot t i ~off:0 ~len:0;
        if contiguous_free t < len then compact t;
        let off = free_ptr t - len in
        Bytes.blit record 0 t.data off len;
        touch t off len;
        set_free_ptr t off;
        set_slot t i ~off ~len;
        true
      end
    end
  end

let iter_live t f =
  for i = 0 to nslots t - 1 do
    match read t i with Some r -> f i r | None -> ()
  done

let fold_live t ~init ~f =
  let acc = ref init in
  iter_live t (fun i r -> acc := f !acc i r);
  !acc

let iter_live_spans t f =
  for i = 0 to nslots t - 1 do
    let off = slot_offset t i in
    if off <> 0 then f i ~off ~len:(slot_length t i)
  done

let validate t =
  let n = nslots t in
  let fp = free_ptr t in
  if header_size + (slot_entry_size * n) > fp then Error "directory overlaps records"
  else if fp > t.size then Error "free_ptr out of bounds"
  else begin
    let spans = ref [] in
    let bad = ref None in
    for i = 0 to n - 1 do
      let off = slot_offset t i and len = slot_length t i in
      if off <> 0 then begin
        if off < fp || off + len > t.size then
          bad := Some (Printf.sprintf "slot %d out of record area" i)
        else spans := (off, len) :: !spans
      end
    done;
    (match !bad with
    | Some _ -> ()
    | None ->
      let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) !spans in
      let rec overlap = function
        | (o1, l1) :: ((o2, _) :: _ as rest) ->
          if o1 + l1 > o2 then bad := Some "overlapping records" else overlap rest
        | _ -> ()
      in
      overlap sorted);
    match !bad with None -> Ok () | Some e -> Error e
  end
