(* A per-domain scratch area for the zero-copy page decode path.

   The classic decode loop ([Heap.iter_page]) allocates a fresh
   [Bytes.sub] per record plus a [(value, offset)] pair per field.  The
   arena path instead copies the pinned page image once into a reused
   scratch buffer, records the live-record spans in reused int arrays,
   and then decodes each record in place with a {!Codec.Cursor} — so per
   entry the only allocations left are the decoded values themselves.

   An arena is single-domain scratch: each parallel scan worker owns one
   and reuses it across every page it decodes.  [load] must run while the
   page is pinned; after it returns the arena holds a private snapshot,
   so [iter] needs no pin and is immune to concurrent page mutation
   (matching [Heap.iter_page]'s snapshot-then-decode contract). *)

type t = {
  mutable scratch : bytes;  (* page image copy; reused, grown as needed *)
  mutable slots : int array;  (* live slot numbers, ascending *)
  mutable offs : int array;  (* span offsets into [scratch] *)
  mutable lens : int array;  (* span lengths *)
  mutable n : int;  (* live spans recorded by the last [load] *)
  cur : Codec.Cursor.t;
}

let create () =
  {
    scratch = Bytes.create 4096;
    slots = Array.make 64 0;
    offs = Array.make 64 0;
    lens = Array.make 64 0;
    n = 0;
    cur = Codec.Cursor.create ();
  }

let grow_spans t =
  let cap = 2 * Array.length t.slots in
  let copy a = Array.init cap (fun i -> if i < Array.length a then a.(i) else 0) in
  t.slots <- copy t.slots;
  t.offs <- copy t.offs;
  t.lens <- copy t.lens

let load t page =
  let size = Page.page_size page in
  if Bytes.length t.scratch < size then t.scratch <- Bytes.create size;
  Bytes.blit (Page.bytes page) 0 t.scratch 0 size;
  t.n <- 0;
  Page.iter_live_spans page (fun slot ~off ~len ->
      if t.n >= Array.length t.slots then grow_spans t;
      t.slots.(t.n) <- slot;
      t.offs.(t.n) <- off;
      t.lens.(t.n) <- len;
      t.n <- t.n + 1)

let iter t f =
  for k = 0 to t.n - 1 do
    Codec.Cursor.set t.cur t.scratch ~pos:t.offs.(k) ~len:t.lens.(k);
    let tuple = Codec.Cursor.tuple t.cur in
    if not (Codec.Cursor.at_end t.cur) then
      failwith "Tuple.decode_exactly: trailing bytes";
    f t.slots.(k) tuple
  done
