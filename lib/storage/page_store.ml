exception Bad_page of int

type impl =
  | Mem of { mutable pages : bytes array; mutable count : int }
  | File of { fd : Unix.file_descr; mutable count : int }

type t = {
  page_size : int;
  mutable impl : impl;
  mutable reads : int;
  mutable writes : int;  (* page writebacks, whole-page or ranged *)
  mutable range_writes : int;  (* individual sub-page range writes *)
  mutable written_bytes : int;
  mutable closed : bool;
}

let magic = "SNAPDIFF"
let superblock_size = 16

let page_size t = t.page_size

let page_count t =
  match t.impl with Mem m -> m.count | File f -> f.count

let check_open t = if t.closed then failwith "Page_store: closed"

let check_page t n =
  if n < 0 || n >= page_count t then raise (Bad_page n)

let file_offset t n = superblock_size + (n * t.page_size)

let really_pread fd buf off =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then begin
      let k = Unix.read fd buf pos (len - pos) in
      if k = 0 then failwith "Page_store: short read";
      go (pos + k)
    end
  in
  go 0

let really_pwrite fd buf off =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then begin
      let k = Unix.write fd buf pos (len - pos) in
      go (pos + k)
    end
  in
  go 0

let read t n =
  check_open t;
  check_page t n;
  t.reads <- t.reads + 1;
  match t.impl with
  | Mem m -> Bytes.copy m.pages.(n)
  | File f ->
    let buf = Bytes.create t.page_size in
    really_pread f.fd buf (file_offset t n);
    buf

let write t n page =
  check_open t;
  check_page t n;
  if Bytes.length page <> t.page_size then
    invalid_arg "Page_store.write: wrong page size";
  t.writes <- t.writes + 1;
  t.written_bytes <- t.written_bytes + t.page_size;
  match t.impl with
  | Mem m -> m.pages.(n) <- Bytes.copy page
  | File f -> really_pwrite f.fd page (file_offset t n)

let write_ranges t n page ranges =
  check_open t;
  check_page t n;
  if Bytes.length page <> t.page_size then
    invalid_arg "Page_store.write_range: wrong page size";
  List.iter
    (fun (off, len) ->
      if off < 0 || len < 0 || off + len > t.page_size then
        invalid_arg "Page_store.write_range: range out of bounds")
    ranges;
  match List.filter (fun (_, len) -> len > 0) ranges with
  | [] -> ()
  | ranges ->
    (* One page writeback however many sub-ranges carry it, so
       [writes_performed] keeps its page-write meaning and stays
       comparable across whole-page and sub-page configurations;
       [range_writes_performed] counts the individual range writes. *)
    t.writes <- t.writes + 1;
    t.range_writes <- t.range_writes + List.length ranges;
    List.iter
      (fun (off, len) ->
        t.written_bytes <- t.written_bytes + len;
        match t.impl with
        | Mem m -> Bytes.blit page off m.pages.(n) off len
        | File f -> really_pwrite f.fd (Bytes.sub page off len) (file_offset t n + off))
      ranges

let write_range t n page ~off ~len = write_ranges t n page [ (off, len) ]

let allocate t =
  check_open t;
  match t.impl with
  | Mem m ->
    if m.count = Array.length m.pages then begin
      let bigger = Array.make (max 8 (2 * Array.length m.pages)) Bytes.empty in
      Array.blit m.pages 0 bigger 0 m.count;
      m.pages <- bigger
    end;
    m.pages.(m.count) <- Bytes.make t.page_size '\000';
    m.count <- m.count + 1;
    m.count - 1
  | File f ->
    let n = f.count in
    really_pwrite f.fd (Bytes.make t.page_size '\000') (file_offset t n);
    f.count <- n + 1;
    n

let sync t =
  check_open t;
  match t.impl with Mem _ -> () | File f -> Unix.fsync f.fd

let close t =
  if not t.closed then begin
    (match t.impl with Mem _ -> () | File f -> Unix.close f.fd);
    t.closed <- true
  end

let reads_performed t = t.reads
let writes_performed t = t.writes
let range_writes_performed t = t.range_writes
let bytes_written t = t.written_bytes

let in_memory ?(page_size = 4096) () =
  if page_size < Page.min_page_size || page_size > Page.max_page_size then
    invalid_arg "Page_store.in_memory: bad page size";
  {
    page_size;
    impl = Mem { pages = Array.make 8 Bytes.empty; count = 0 };
    reads = 0;
    writes = 0;
    range_writes = 0;
    written_bytes = 0;
    closed = false;
  }

let u32_of_bytes b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let bytes_of_u32 v =
  Bytes.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

let open_file ?page_size path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  if size = 0 then begin
    let ps = Option.value page_size ~default:4096 in
    if ps < Page.min_page_size || ps > Page.max_page_size then begin
      Unix.close fd;
      invalid_arg "Page_store.open_file: bad page size"
    end;
    let sb = Bytes.make superblock_size '\000' in
    Bytes.blit_string magic 0 sb 0 8;
    Bytes.blit (bytes_of_u32 ps) 0 sb 8 4;
    really_pwrite fd sb 0;
    { page_size = ps; impl = File { fd; count = 0 }; reads = 0; writes = 0;
      range_writes = 0; written_bytes = 0; closed = false }
  end
  else begin
    if size < superblock_size then begin
      Unix.close fd;
      failwith "Page_store.open_file: truncated superblock"
    end;
    let sb = Bytes.create superblock_size in
    really_pread fd sb 0;
    if Bytes.sub_string sb 0 8 <> magic then begin
      Unix.close fd;
      failwith "Page_store.open_file: bad magic"
    end;
    let ps = u32_of_bytes sb 8 in
    (match page_size with
    | Some requested when requested <> ps ->
      Unix.close fd;
      failwith "Page_store.open_file: page size mismatch"
    | _ -> ());
    let data = size - superblock_size in
    if data mod ps <> 0 then begin
      Unix.close fd;
      failwith "Page_store.open_file: file size not page-aligned"
    end;
    { page_size = ps; impl = File { fd; count = data / ps }; reads = 0; writes = 0;
      range_writes = 0; written_bytes = 0; closed = false }
  end
