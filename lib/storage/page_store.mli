(** Page stores: the "disk".

    A page store holds numbered fixed-size pages.  Two implementations are
    provided: an in-memory store (the default for simulation — the paper's
    evaluation metric is message traffic, not I/O) and a Unix-file-backed
    store for durability tests together with the WAL. *)

type t

exception Bad_page of int

val page_size : t -> int

val page_count : t -> int
(** Pages are numbered [0 .. page_count - 1].  Page 0 is conventionally a
    header page owned by the structure stored in the file (heap, log...). *)

val read : t -> int -> bytes
(** A copy of the page image.  Raises [Bad_page] if out of range. *)

val write : t -> int -> bytes -> unit
(** Raises [Bad_page] if out of range, [Invalid_argument] on a wrong-size
    image. *)

val write_range : t -> int -> bytes -> off:int -> len:int -> unit
(** [write_range t n page ~off ~len] writes only bytes
    [\[off, off + len)] of the page image to the stored page — the
    sub-page write-back path for pages whose dirty ranges are known.
    [page] must still be a full page image (the range is taken from it at
    the same offset).  A zero-length range is a no-op.  Raises [Bad_page]
    or [Invalid_argument] as {!write}. *)

val write_ranges : t -> int -> bytes -> (int * int) list -> unit
(** [write_ranges t n page ranges] writes each [(off, len)] range of the
    page image, counting the whole call as {e one} page write in
    {!writes_performed} (and one entry per range in
    {!range_writes_performed}) — the one-call-per-page-writeback entry
    point {!Buffer_pool} uses so write counts stay comparable between
    whole-page and sub-page write-back.  Zero-length ranges are skipped;
    an empty (or all-empty) list is a no-op and counts nothing.  Raises
    as {!write_range}. *)

val allocate : t -> int
(** Append a zeroed page; returns its number. *)

val sync : t -> unit
(** Force to stable storage (no-op for the memory store). *)

val close : t -> unit

val reads_performed : t -> int
val writes_performed : t -> int
(** I/O counters for cost accounting in benchmarks.  [writes_performed]
    counts page writebacks: one per {!write} and one per (non-empty)
    {!write_ranges} call, however many sub-ranges carried it. *)

val range_writes_performed : t -> int
(** Individual sub-page range writes issued via {!write_range} /
    {!write_ranges}. *)

val bytes_written : t -> int
(** Bytes actually written ({!write} counts a whole page, {!write_range}
    only the range) — the write-amplification measure. *)

val in_memory : ?page_size:int -> unit -> t
(** Fresh empty memory store ([page_size] defaults to 4096). *)

val open_file : ?page_size:int -> string -> t
(** Open or create a file-backed store.  If the file exists its recorded
    page size must match [page_size] when both are given; an existing
    store's page size wins otherwise.  Raises [Failure] on a corrupt or
    mismatched file. *)
