module Metrics = Snapdiff_obs.Metrics

(* Per-pool stats stay on the pool (see {!stats}); these global handles
   aggregate across every pool in the process for [snapshotdb stats]. *)
let m_hits = Metrics.counter Metrics.global "bufferpool.hits"
let m_misses = Metrics.counter Metrics.global "bufferpool.misses"
let m_evictions = Metrics.counter Metrics.global "bufferpool.evictions"
let m_writebacks = Metrics.counter Metrics.global "bufferpool.writebacks"
let m_writeback_bytes = Metrics.counter Metrics.global "bufferpool.writeback_bytes"
let m_writeback_saved = Metrics.counter Metrics.global "bufferpool.writeback_bytes_saved"

type policy = Lru | Second_chance

type frame = {
  page_no : int;
  page : Page.t;
  mutable dirty : bool;
  mutable pins : int;
  mutable last_used : int;  (* logical tick for LRU *)
  mutable referenced : bool;  (* second-chance bit *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  writeback_bytes : int;
  writeback_bytes_saved : int;
}

type t = {
  store : Page_store.t;
  capacity : int;
  policy : policy;
  frames : (int, frame) Hashtbl.t;  (* page_no -> frame *)
  clock_ring : int Queue.t;  (* page numbers, second-chance order *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable writeback_bytes : int;
  mutable writeback_bytes_saved : int;
}

let create ?(frames = 128) ?(policy = Lru) store =
  if frames < 1 then invalid_arg "Buffer_pool.create: need at least one frame";
  {
    store;
    capacity = frames;
    policy;
    frames = Hashtbl.create (2 * frames);
    clock_ring = Queue.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
    writeback_bytes = 0;
    writeback_bytes_saved = 0;
  }

let store t = t.store

(* Write back only the page's tracked dirty ranges when that is cheaper
   than a full-page write (each range write carries per-call overhead, so
   a nearly-full page goes out whole).  The frame's image was adopted from
   the store, so it differs from the stored page only inside the tracked
   ranges — writing those alone re-synchronizes the store. *)
let writeback t frame =
  if frame.dirty then begin
    let size = Page.page_size frame.page in
    let ranges = Page.dirty_ranges frame.page in
    let range_bytes = Page.dirty_bytes frame.page in
    let written =
      if ranges <> [] && 2 * range_bytes < size then begin
        (* One write_ranges call = one counted page write, so sub-page
           writeback does not inflate [Page_store.writes_performed]. *)
        Page_store.write_ranges t.store frame.page_no (Page.bytes frame.page) ranges;
        range_bytes
      end
      else begin
        Page_store.write t.store frame.page_no (Page.bytes frame.page);
        size
      end
    in
    Page.reset_dirty_ranges frame.page;
    frame.dirty <- false;
    t.writebacks <- t.writebacks + 1;
    t.writeback_bytes <- t.writeback_bytes + written;
    t.writeback_bytes_saved <- t.writeback_bytes_saved + (size - written);
    Metrics.incr m_writebacks;
    Metrics.add m_writeback_bytes written;
    Metrics.add m_writeback_saved (size - written)
  end

let evict_lru t =
  (* Choose the least-recently-used unpinned frame. *)
  let victim =
    Hashtbl.fold
      (fun _ f best ->
        if f.pins > 0 then best
        else
          match best with
          | None -> Some f
          | Some b -> if f.last_used < b.last_used then Some f else best)
      t.frames None
  in
  match victim with
  | None -> failwith "Buffer_pool: all frames pinned"
  | Some f ->
    writeback t f;
    Hashtbl.remove t.frames f.page_no;
    t.evictions <- t.evictions + 1;
    Metrics.incr m_evictions

let evict_second_chance t =
  (* Sweep the ring: a referenced or pinned frame gets a second chance. *)
  let budget = ref (2 * (Queue.length t.clock_ring + 1)) in
  let rec sweep () =
    if Queue.is_empty t.clock_ring || !budget <= 0 then
      failwith "Buffer_pool: all frames pinned"
    else begin
      decr budget;
      let page_no = Queue.pop t.clock_ring in
      match Hashtbl.find_opt t.frames page_no with
      | None -> sweep ()  (* stale ring entry *)
      | Some f ->
        if f.pins > 0 || f.referenced then begin
          f.referenced <- false;
          Queue.add page_no t.clock_ring;
          sweep ()
        end
        else begin
          writeback t f;
          Hashtbl.remove t.frames page_no;
          t.evictions <- t.evictions + 1;
          Metrics.incr m_evictions
        end
    end
  in
  sweep ()

let evict_one t =
  match t.policy with Lru -> evict_lru t | Second_chance -> evict_second_chance t

let get_frame t n =
  match Hashtbl.find_opt t.frames n with
  | Some f ->
    t.hits <- t.hits + 1;
    Metrics.incr m_hits;
    f
  | None ->
    t.misses <- t.misses + 1;
    Metrics.incr m_misses;
    if Hashtbl.length t.frames >= t.capacity then evict_one t;
    let image = Page_store.read t.store n in
    let f =
      { page_no = n; page = Page.of_bytes image; dirty = false; pins = 0; last_used = 0;
        referenced = false }
    in
    Hashtbl.replace t.frames n f;
    if t.policy = Second_chance then Queue.add n t.clock_ring;
    f

let with_page t n f =
  let frame = get_frame t n in
  frame.pins <- frame.pins + 1;
  t.tick <- t.tick + 1;
  frame.last_used <- t.tick;
  frame.referenced <- true;
  Fun.protect
    ~finally:(fun () -> frame.pins <- frame.pins - 1)
    (fun () ->
      let status, result = f frame.page in
      (match status with `Dirty -> frame.dirty <- true | `Clean -> ());
      result)

let allocate_page t = Page_store.allocate t.store

let flush_all t = Hashtbl.iter (fun _ f -> writeback t f) t.frames

let dirty_pages t =
  List.sort Int.compare
    (Hashtbl.fold (fun n f acc -> if f.dirty then n :: acc else acc) t.frames [])

let writeback_page t n =
  match Hashtbl.find_opt t.frames n with
  | Some f when f.dirty ->
    let before = t.writeback_bytes in
    writeback t f;
    t.writeback_bytes - before
  | _ -> 0

let invalidate t =
  Hashtbl.iter
    (fun _ f -> if f.pins > 0 then failwith "Buffer_pool.invalidate: pinned frame")
    t.frames;
  flush_all t;
  Hashtbl.reset t.frames;
  Queue.clear t.clock_ring

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    writebacks = t.writebacks;
    writeback_bytes = t.writeback_bytes;
    writeback_bytes_saved = t.writeback_bytes_saved;
  }
