module Metrics = Snapdiff_obs.Metrics

(* Per-pool stats stay on the pool (see {!stats}); these global handles
   aggregate across every pool in the process for [snapshotdb stats]. *)
let m_hits = Metrics.counter Metrics.global "bufferpool.hits"
let m_misses = Metrics.counter Metrics.global "bufferpool.misses"
let m_evictions = Metrics.counter Metrics.global "bufferpool.evictions"
let m_writebacks = Metrics.counter Metrics.global "bufferpool.writebacks"
let m_writeback_bytes = Metrics.counter Metrics.global "bufferpool.writeback_bytes"
let m_writeback_saved = Metrics.counter Metrics.global "bufferpool.writeback_bytes_saved"

type policy = Lru | Second_chance

type frame = {
  page_no : int;
  page : Page.t;
  mutable dirty : bool;  (* guarded by the frame's stripe lock *)
  mutable pins : int;  (* guarded by the frame's stripe lock *)
  mutable last_used : int;  (* logical tick for LRU *)
  mutable referenced : bool;  (* second-chance bit *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  writeback_bytes : int;
  writeback_bytes_saved : int;
}

(* Domain-safety: the resident-page table is striped by page number so
   parallel scan domains pinning distinct pages never contend on one
   lock.  The hit path (pin + LRU touch + unpin) takes exactly one
   stripe lock; everything that spans stripes — miss handling, eviction,
   flush, invalidate — first takes the global [g_m] and, when it must
   examine frames, the stripe locks in ascending order.  Lock order is
   always g_m -> stripes ascending, and only a g_m holder ever holds
   more than one stripe lock, so the pool cannot deadlock.  [g_m] also
   serializes all {!Page_store} I/O (the store is not itself
   domain-safe).  Counters and the LRU tick are atomics.

   Run single-domain, the pool behaves exactly as the unstriped original:
   same tick sequence, same stats, same LRU victim (ticks are unique, so
   the strict-min fold has a unique answer regardless of fold order). *)

let stripe_count = 16

type stripe = { s_m : Mutex.t; tbl : (int, frame) Hashtbl.t }

type t = {
  store : Page_store.t;
  capacity : int;
  policy : policy;
  g_m : Mutex.t;
  stripes : stripe array;
  clock_ring : int Queue.t;  (* second-chance order; guarded by g_m *)
  n_frames : int Atomic.t;
  tick : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  writebacks : int Atomic.t;
  writeback_bytes : int Atomic.t;
  writeback_bytes_saved : int Atomic.t;
}

let create ?(frames = 128) ?(policy = Lru) store =
  if frames < 1 then invalid_arg "Buffer_pool.create: need at least one frame";
  {
    store;
    capacity = frames;
    policy;
    g_m = Mutex.create ();
    stripes =
      Array.init stripe_count (fun _ ->
          { s_m = Mutex.create (); tbl = Hashtbl.create 16 });
    clock_ring = Queue.create ();
    n_frames = Atomic.make 0;
    tick = Atomic.make 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    writebacks = Atomic.make 0;
    writeback_bytes = Atomic.make 0;
    writeback_bytes_saved = Atomic.make 0;
  }

let store t = t.store

let stripe_of t n = t.stripes.(n land (stripe_count - 1))

let lock_all t = Array.iter (fun s -> Mutex.lock s.s_m) t.stripes

let unlock_all t = Array.iter (fun s -> Mutex.unlock s.s_m) t.stripes

(* Write back only the page's tracked dirty ranges when that is cheaper
   than a full-page write (each range write carries per-call overhead, so
   a nearly-full page goes out whole).  The frame's image was adopted from
   the store, so it differs from the stored page only inside the tracked
   ranges — writing those alone re-synchronizes the store.

   Caller must hold g_m (store I/O) and must have exclusive access to the
   frame's [dirty] flag: either all stripe locks (flush paths, frame still
   resident) or the frame already removed from its stripe (eviction).
   Returns the bytes written (0 if the frame was clean). *)
let writeback t frame =
  if not frame.dirty then 0
  else begin
    let size = Page.page_size frame.page in
    let ranges = Page.dirty_ranges frame.page in
    let range_bytes = Page.dirty_bytes frame.page in
    let written =
      if ranges <> [] && 2 * range_bytes < size then begin
        (* One write_ranges call = one counted page write, so sub-page
           writeback does not inflate [Page_store.writes_performed]. *)
        Page_store.write_ranges t.store frame.page_no (Page.bytes frame.page) ranges;
        range_bytes
      end
      else begin
        Page_store.write t.store frame.page_no (Page.bytes frame.page);
        size
      end
    in
    Page.reset_dirty_ranges frame.page;
    frame.dirty <- false;
    Atomic.incr t.writebacks;
    ignore (Atomic.fetch_and_add t.writeback_bytes written : int);
    ignore (Atomic.fetch_and_add t.writeback_bytes_saved (size - written) : int);
    Metrics.incr m_writebacks;
    Metrics.add m_writeback_bytes written;
    Metrics.add m_writeback_saved (size - written);
    written
  end

(* Eviction runs with g_m held.  Victim selection takes every stripe lock
   so a concurrent hit cannot pin the chosen victim under us; the victim
   is unlinked before the stripe locks drop, after which it is private to
   the evictor and can be written back under g_m alone. *)

let evict_lru t =
  lock_all t;
  (* Choose the least-recently-used unpinned frame. *)
  let victim =
    Array.fold_left
      (fun best s ->
        Hashtbl.fold
          (fun _ f best ->
            if f.pins > 0 then best
            else
              match best with
              | None -> Some f
              | Some b -> if f.last_used < b.last_used then Some f else best)
          s.tbl best)
      None t.stripes
  in
  match victim with
  | None ->
    unlock_all t;
    failwith "Buffer_pool: all frames pinned"
  | Some f ->
    Hashtbl.remove (stripe_of t f.page_no).tbl f.page_no;
    Atomic.decr t.n_frames;
    unlock_all t;
    ignore (writeback t f : int);
    Atomic.incr t.evictions;
    Metrics.incr m_evictions

let evict_second_chance t =
  lock_all t;
  (* Sweep the ring: a referenced or pinned frame gets a second chance. *)
  let budget = ref (2 * (Queue.length t.clock_ring + 1)) in
  let rec sweep () =
    if Queue.is_empty t.clock_ring || !budget <= 0 then begin
      unlock_all t;
      failwith "Buffer_pool: all frames pinned"
    end
    else begin
      decr budget;
      let page_no = Queue.pop t.clock_ring in
      match Hashtbl.find_opt (stripe_of t page_no).tbl page_no with
      | None -> sweep ()  (* stale ring entry *)
      | Some f ->
        if f.pins > 0 || f.referenced then begin
          f.referenced <- false;
          Queue.add page_no t.clock_ring;
          sweep ()
        end
        else begin
          Hashtbl.remove (stripe_of t page_no).tbl page_no;
          Atomic.decr t.n_frames;
          unlock_all t;
          ignore (writeback t f : int);
          Atomic.incr t.evictions;
          Metrics.incr m_evictions
        end
    end
  in
  sweep ()

let evict_one t =
  match t.policy with Lru -> evict_lru t | Second_chance -> evict_second_chance t

(* Pin page [n] if resident, refreshing its LRU state, all under its
   stripe lock so eviction (which holds every stripe lock while picking a
   victim) can never choose a frame between our find and our pin. *)
let try_pin t n =
  let s = stripe_of t n in
  Mutex.lock s.s_m;
  let r =
    match Hashtbl.find_opt s.tbl n with
    | Some f ->
      f.pins <- f.pins + 1;
      f.last_used <- 1 + Atomic.fetch_and_add t.tick 1;
      f.referenced <- true;
      Some f
    | None -> None
  in
  Mutex.unlock s.s_m;
  r

let fault_in t n =
  (* Miss path, g_m held: evict if full, read from the store, insert the
     frame already pinned. *)
  Atomic.incr t.misses;
  Metrics.incr m_misses;
  if Atomic.get t.n_frames >= t.capacity then evict_one t;
  let image = Page_store.read t.store n in
  let f =
    { page_no = n; page = Page.of_bytes image; dirty = false; pins = 1;
      last_used = 1 + Atomic.fetch_and_add t.tick 1; referenced = true }
  in
  let s = stripe_of t n in
  Mutex.lock s.s_m;
  Hashtbl.replace s.tbl n f;
  Mutex.unlock s.s_m;
  Atomic.incr t.n_frames;
  if t.policy = Second_chance then Queue.add n t.clock_ring;
  f

let get_pinned t n =
  match try_pin t n with
  | Some f ->
    Atomic.incr t.hits;
    Metrics.incr m_hits;
    f
  | None ->
    Mutex.lock t.g_m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.g_m)
      (fun () ->
        (* Another domain may have faulted the page in while we waited
           for g_m; re-check before reading the store. *)
        match try_pin t n with
        | Some f ->
          Atomic.incr t.hits;
          Metrics.incr m_hits;
          f
        | None -> fault_in t n)

let unpin t frame ~dirty =
  let s = stripe_of t frame.page_no in
  Mutex.lock s.s_m;
  if dirty then frame.dirty <- true;
  frame.pins <- frame.pins - 1;
  Mutex.unlock s.s_m

let with_page t n f =
  let frame = get_pinned t n in
  let dirty = ref false in
  Fun.protect
    ~finally:(fun () -> unpin t frame ~dirty:!dirty)
    (fun () ->
      let status, result = f frame.page in
      (match status with `Dirty -> dirty := true | `Clean -> ());
      result)

let allocate_page t = Page_store.allocate t.store

(* Whole-pool operations: g_m plus every stripe lock, so frames cannot
   be pinned/dirtied/evicted mid-walk. *)
let with_all t f =
  Mutex.lock t.g_m;
  lock_all t;
  Fun.protect
    ~finally:(fun () ->
      unlock_all t;
      Mutex.unlock t.g_m)
    f

let iter_frames t f =
  Array.iter (fun s -> Hashtbl.iter (fun _ fr -> f fr) s.tbl) t.stripes

let flush_all t = with_all t (fun () -> iter_frames t (fun f -> ignore (writeback t f : int)))

let dirty_pages t =
  with_all t (fun () ->
      let acc = ref [] in
      iter_frames t (fun f -> if f.dirty then acc := f.page_no :: !acc);
      List.sort Int.compare !acc)

let writeback_page t n =
  with_all t (fun () ->
      match Hashtbl.find_opt (stripe_of t n).tbl n with
      | Some f when f.dirty -> writeback t f
      | _ -> 0)

let invalidate t =
  with_all t (fun () ->
      iter_frames t (fun f ->
          if f.pins > 0 then failwith "Buffer_pool.invalidate: pinned frame");
      iter_frames t (fun f -> ignore (writeback t f : int));
      Array.iter (fun s -> Hashtbl.reset s.tbl) t.stripes;
      Atomic.set t.n_frames 0;
      Queue.clear t.clock_ring)

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    writebacks = Atomic.get t.writebacks;
    writeback_bytes = Atomic.get t.writeback_bytes;
    writeback_bytes_saved = Atomic.get t.writeback_bytes_saved;
  }
