(** Little-endian binary encoding helpers shared by the WAL record format
    and the network message format. *)

val add_u8 : Buffer.t -> int -> unit
val add_u16 : Buffer.t -> int -> unit
val add_u32 : Buffer.t -> int -> unit
val add_i64 : Buffer.t -> int64 -> unit

val add_int : Buffer.t -> int -> unit
(** OCaml int as i64. *)

val add_string : Buffer.t -> string -> unit
(** u32 length + bytes. *)

val add_tuple : Buffer.t -> Tuple.t -> unit

(** Readers take [bytes] and an offset and return the value with the offset
    just past it; they raise [Failure _] on truncation. *)

val u8 : bytes -> int -> int * int
val u16 : bytes -> int -> int * int
val u32 : bytes -> int -> int * int
val i64 : bytes -> int -> int64 * int
val int : bytes -> int -> int * int
val string : bytes -> int -> string * int
val tuple : bytes -> int -> Tuple.t * int

(** In-place cursor readers: the zero-copy counterpart of the offset-pair
    readers above.  A cursor holds a [(buffer, position, limit)] window
    and each read advances the position, so the decode hot loop allocates
    nothing per field beyond the decoded values themselves (no
    [(value, offset)] pairs, no per-record [Bytes.sub]).  Create one
    cursor per decoding context and re-point it with {!Cursor.set} for
    each record. *)
module Cursor : sig
  type t

  val create : unit -> t
  (** A cursor over the empty window; point it somewhere with {!set}. *)

  val set : t -> bytes -> pos:int -> len:int -> unit
  (** Re-point the cursor at the window [\[pos, pos+len)] of [b].  Raises
      [Invalid_argument] if the window falls outside [b].  Reads past the
      window raise [Failure "Codec: truncated"] — the window edge is the
      truncation boundary, exactly like the buffer edge for the
      offset-pair readers. *)

  val pos : t -> int
  (** Current absolute position in the underlying buffer. *)

  val at_end : t -> bool
  (** Whether the window is fully consumed — the cursor analogue of
      [Tuple.decode_exactly]'s trailing-bytes check. *)

  val skip : t -> int -> unit

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val int : t -> int
  val string : t -> string

  val value : t -> Value.t
  (** One {!Value.t} in the tag-byte codec ({!Value.decode}). *)

  val tuple : t -> Tuple.t
  (** One self-delimiting tuple ({!Tuple.decode}). *)
end
