(** Reused per-domain scratch for the zero-copy page decode path.

    {!load} snapshots a pinned page's image into the arena's scratch
    buffer (one [blit], no per-record copies) together with its live
    record spans; {!iter} then decodes each record in place with a
    {!Codec.Cursor}, yielding exactly what [Heap.iter_page] would have
    yielded for the same page state but without the per-record
    [Bytes.sub] and per-field offset-pair allocations.

    An arena is {e not} domain-safe: give each scan worker its own and
    let it reuse it across pages.  Because [load] copies, [iter] runs
    without a pin and is unaffected by page mutations after the load —
    the same snapshot-then-decode contract as [Heap.iter_page]. *)

type t

val create : unit -> t

val load : t -> Page.t -> unit
(** Snapshot [page]'s bytes and live spans into the arena.  Call while
    the page is pinned; replaces whatever the arena held before. *)

val iter : t -> (int -> Tuple.t -> unit) -> unit
(** [iter t f] decodes the records captured by the last {!load} in
    ascending slot order and calls [f slot tuple] for each.  Raises
    [Failure] exactly where [Tuple.decode_exactly] would (corrupt tag,
    truncation, trailing bytes). *)
