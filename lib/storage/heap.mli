(** Heap tables: schema-typed tuples in slotted pages behind a buffer pool.

    Entry addresses are {!Addr.t} (page, slot) pairs; {!iter} visits live
    entries in strictly increasing address order, which is the address-order
    scan the refresh algorithms require.  Insertion is lowest-first-fit, so
    freed addresses are naturally reused ("insert the entry into some empty
    address of the base table").

    The callback of {!iter} may [update] or [delete] the entry it is
    currently visiting (the combined fix-up + refresh scan needs this); it
    must not insert. *)

type t

val create : ?page_size:int -> ?frames:int -> ?fill_factor:float -> Schema.t -> t
(** Fresh heap over a private in-memory store.  [fill_factor] (default
    0.9) stops first-fit insertion from packing a page completely, keeping
    headroom so in-place updates that grow a record (or annotation
    stamping) do not overflow the page. *)

val on_pool : ?fill_factor:float -> Buffer_pool.t -> Schema.t -> t
(** Attach to an existing (possibly non-empty) store: page 0 is the header,
    data pages follow; live entries are discovered by scanning.  A fresh
    store is initialized. *)

val schema : t -> Schema.t

val pool : t -> Buffer_pool.t

val count : t -> int
(** Number of live entries. *)

val data_pages : t -> int

exception Tuple_error of string
(** Raised when a tuple does not validate against the schema, or is too
    large for a page. *)

val insert : t -> Tuple.t -> Addr.t

val insert_at : t -> Addr.t -> Tuple.t -> unit
(** Place a tuple at an exact address (physical redo recovery), allocating
    intervening pages if needed.  Raises [Tuple_error] if the address is
    occupied or the record cannot fit in that page. *)

val get : t -> Addr.t -> Tuple.t option

val mem : t -> Addr.t -> bool

val update : t -> Addr.t -> Tuple.t -> unit
(** Replace the entry at [addr], keeping its address.  Raises [Not_found]
    if there is no live entry there; [Tuple_error] if the new tuple cannot
    fit in the entry's page. *)

val delete : t -> Addr.t -> unit
(** Raises [Not_found] if there is no live entry at [addr]. *)

val iter : t -> (Addr.t -> Tuple.t -> unit) -> unit

val iter_page : t -> page:int -> (Addr.t -> Tuple.t -> unit) -> unit
(** Visit the live entries of one data page in slot order — {!iter}
    restricted to page [page] ([1 <= page <= data_pages]).  The page-wise
    scans of the pruned refresh path drive this directly so they can skip
    whole pages without decoding them.  Raises [Invalid_argument] for a
    page outside the store. *)

val iter_page_arena :
  t -> arena:Decode_arena.t -> page:int -> (Addr.t -> Tuple.t -> unit) -> unit
(** {!iter_page} through a {!Decode_arena}: the page image is snapshotted
    into the arena under the pin and decoded in place, yielding the same
    (address, tuple) sequence with far fewer allocations.  The parallel
    scan's per-domain decode path.  Same mutation contract as
    {!iter_page}: the callback sees the pre-callback page state. *)

val fold : t -> init:'a -> f:('a -> Addr.t -> Tuple.t -> 'a) -> 'a

val to_list : t -> (Addr.t * Tuple.t) list
(** In address order. *)

val first_addr : t -> Addr.t option
val last_addr : t -> Addr.t option

val flush : t -> unit
(** Flush the buffer pool to the store. *)

val validate : t -> (unit, string) result
(** Structural check of every data page plus tuple decodability. *)
