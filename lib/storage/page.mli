(** Slotted pages.

    Classic layout over a fixed-size byte array:

    {v
    +--------+----------------------+--------······--------+
    | header | slot directory ----> |  free  <---- records |
    +--------+----------------------+--------······--------+
    v}

    The header is 4 bytes: [u16 nslots] and [u16 free_ptr] (offset of the
    lowest used record byte; records are allocated downward from the page
    end).  Each slot directory entry is 4 bytes: [u16 offset] (0 = empty
    slot) and [u16 length].  Slot numbers are stable for the lifetime of
    the page — deletion tombstones the slot, it may later be reused by an
    insertion — which is what makes (page, slot) a usable {!Addr.t}.

    Offsets are 16-bit, so [page_size] must be at most 65536. *)

type t

val min_page_size : int
val max_page_size : int

val create : page_size:int -> t
(** A fresh, empty page.  Raises [Invalid_argument] on a bad size. *)

val of_bytes : bytes -> t
(** Adopt (not copy) an existing page image.  Raises [Failure] if the
    header is structurally invalid. *)

val bytes : t -> bytes
(** The backing array (shared, not a copy). *)

val page_size : t -> int

val nslots : t -> int
(** Size of the slot directory, including empty slots. *)

val live_records : t -> int

val slot_is_live : t -> int -> bool
(** False for empty slots and out-of-range slot numbers. *)

val free_space_for_insert : t -> int
(** Length of the largest record currently insertable (accounting for a new
    directory entry if no empty slot is available, and assuming compaction). *)

val insert : t -> bytes -> int option
(** [insert t record] places the record in the lowest-numbered empty slot
    (or a fresh slot) and returns the slot number, or [None] if it cannot
    fit even after compaction.  Raises [Invalid_argument] on an empty
    record or one longer than the page can ever hold. *)

val insert_at : t -> int -> bytes -> bool
(** [insert_at t slot record] places the record in exactly [slot] (used by
    physical redo recovery to restore a record at its original rid),
    extending the slot directory with empty slots if needed.  Returns
    [false] if the slot is live or the record cannot fit. *)

val read : t -> int -> bytes option
(** Copy of the record in the slot; [None] if empty or out of range. *)

val delete : t -> int -> bool
(** Tombstone the slot.  Returns whether it was live. *)

val update : t -> int -> bytes -> bool
(** Replace the record in a live slot, compacting if needed; the slot number
    is preserved.  Returns [false] (leaving the page unchanged) if the slot
    is not live or the new record cannot fit. *)

val iter_live : t -> (int -> bytes -> unit) -> unit
(** Live slots in ascending slot order. *)

val fold_live : t -> init:'a -> f:('a -> int -> bytes -> 'a) -> 'a

val iter_live_spans : t -> (int -> off:int -> len:int -> unit) -> unit
(** Like {!iter_live} but yields each live record's byte span inside
    {!bytes} instead of copying it out — the zero-copy decode path reads
    records in place.  The spans are only valid until the page is next
    mutated. *)

val compact : t -> unit
(** Defragment the record area.  Slot numbers and contents are unchanged. *)

(** {2 Dirty-range tracking}

    Every mutating primitive records the byte span it wrote in a short
    list of disjoint ranges (coalesced, capped at a few entries by merging
    the closest pair — an over-approximation, never an omission).  Since a
    page adopted with {!of_bytes} can only diverge from the adopted image
    through these primitives, the ranges bound exactly where the in-memory
    page differs from its backing-store image; the buffer pool uses them
    to write back sub-page ranges instead of whole pages. *)

val dirty_ranges : t -> (int * int) list
(** [(off, len)] spans modified since the last {!reset_dirty_ranges}, in
    ascending offset order; empty means untouched. *)

val dirty_bytes : t -> int
(** Total bytes covered by {!dirty_ranges}. *)

val reset_dirty_ranges : t -> unit
(** Forget tracked ranges (called after a write-back made the store image
    match the page again). *)

val validate : t -> (unit, string) result
(** Structural integrity check (offsets in bounds, no overlaps). *)
