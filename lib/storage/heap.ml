exception Tuple_error of string

type t = {
  schema : Schema.t;
  pool : Buffer_pool.t;
  free_bytes : (int, int) Hashtbl.t;  (* data page -> insertable bytes *)
  reserve : int;  (* headroom kept per page for in-place record growth *)
  mutable count : int;
  mutable insert_hint : int;  (* lowest data page that may have space *)
}

let schema t = t.schema
let pool t = t.pool
let count t = t.count

let data_pages t = max 0 (Page_store.page_count (Buffer_pool.store t.pool) - 1)

let note_free t page_no free = Hashtbl.replace t.free_bytes page_no free

let scan_existing t =
  let store = Buffer_pool.store t.pool in
  for p = 1 to Page_store.page_count store - 1 do
    Buffer_pool.with_page t.pool p (fun page ->
        t.count <- t.count + Page.live_records page;
        note_free t p (Page.free_space_for_insert page);
        (`Clean, ()))
  done

let on_pool ?(fill_factor = 0.9) pool schema =
  if fill_factor <= 0.0 || fill_factor > 1.0 then
    invalid_arg "Heap.on_pool: fill factor must be in (0, 1]";
  let store = Buffer_pool.store pool in
  if Page_store.page_count store = 0 then
    ignore (Page_store.allocate store : int);
  let reserve =
    int_of_float ((1.0 -. fill_factor) *. float_of_int (Page_store.page_size store))
  in
  let t =
    { schema; pool; free_bytes = Hashtbl.create 64; reserve; count = 0; insert_hint = 1 }
  in
  scan_existing t;
  t

let create ?(page_size = 4096) ?(frames = 128) ?fill_factor schema =
  let store = Page_store.in_memory ~page_size () in
  on_pool ?fill_factor (Buffer_pool.create ~frames store) schema

let encode_checked t tuple =
  (match Schema.validate_tuple t.schema tuple with
  | Ok () -> ()
  | Error e -> raise (Tuple_error e));
  let record = Tuple.encode_to_bytes tuple in
  let store = Buffer_pool.store t.pool in
  if Bytes.length record > Page_store.page_size store - 16 then
    raise (Tuple_error "tuple too large for a page");
  record

let insert t tuple =
  let record = encode_checked t tuple in
  let store = Buffer_pool.store t.pool in
  let need = Bytes.length record in
  let try_page p =
    match Hashtbl.find_opt t.free_bytes p with
    | Some free when free >= need + t.reserve ->
      Buffer_pool.with_page t.pool p (fun page ->
          match Page.insert page record with
          | Some slot ->
            note_free t p (Page.free_space_for_insert page);
            (`Dirty, Some (Addr.make ~page:p ~slot))
          | None ->
            note_free t p (Page.free_space_for_insert page);
            (`Clean, None))
    | _ -> None
  in
  let rec find p =
    if p >= Page_store.page_count store then None
    else
      match try_page p with
      | Some addr -> Some addr
      | None -> find (p + 1)
  in
  let addr =
    match find (max 1 t.insert_hint) with
    | Some addr -> addr
    | None ->
      let p = Buffer_pool.allocate_page t.pool in
      Buffer_pool.with_page t.pool p (fun page ->
          (* A fresh page arrives zeroed, which decodes as an empty page. *)
          match Page.insert page record with
          | Some slot ->
            note_free t p (Page.free_space_for_insert page);
            (`Dirty, Addr.make ~page:p ~slot)
          | None -> raise (Tuple_error "tuple does not fit in an empty page"))
  in
  t.count <- t.count + 1;
  addr

let insert_at t addr tuple =
  let record = encode_checked t tuple in
  let store = Buffer_pool.store t.pool in
  let p = Addr.page addr in
  if p < 1 then invalid_arg "Heap.insert_at: bad page";
  while Page_store.page_count store <= p do
    ignore (Buffer_pool.allocate_page t.pool : int)
  done;
  let ok =
    Buffer_pool.with_page t.pool p (fun page ->
        if Page.insert_at page (Addr.slot addr) record then begin
          note_free t p (Page.free_space_for_insert page);
          (`Dirty, true)
        end
        else (`Clean, false))
  in
  if not ok then raise (Tuple_error "Heap.insert_at: slot live or page full");
  t.count <- t.count + 1

let with_entry t addr f =
  let store = Buffer_pool.store t.pool in
  let p = Addr.page addr in
  if p < 1 || p >= Page_store.page_count store then None
  else
    Buffer_pool.with_page t.pool p (fun page ->
        if Page.slot_is_live page (Addr.slot addr) then f p page (Addr.slot addr)
        else (`Clean, None))

let get t addr =
  match
    with_entry t addr (fun _ page slot ->
        match Page.read page slot with
        | Some record -> (`Clean, Some (Tuple.decode_exactly record))
        | None -> (`Clean, None))
  with
  | Some tuple -> Some tuple
  | None -> None

let mem t addr = get t addr <> None

let update t addr tuple =
  let record = encode_checked t tuple in
  match
    with_entry t addr (fun p page slot ->
        if Page.update page slot record then begin
          note_free t p (Page.free_space_for_insert page);
          (`Dirty, Some ())
        end
        else raise (Tuple_error "updated tuple does not fit in its page"))
  with
  | Some () -> ()
  | None -> raise Not_found

let delete t addr =
  match
    with_entry t addr (fun p page slot ->
        ignore (Page.delete page slot : bool);
        note_free t p (Page.free_space_for_insert page);
        (`Dirty, Some ()))
  with
  | Some () ->
    t.count <- t.count - 1;
    if Addr.page addr < t.insert_hint then t.insert_hint <- Addr.page addr
  | None -> raise Not_found

let iter_page t ~page:p f =
  let store = Buffer_pool.store t.pool in
  if p < 1 || p >= Page_store.page_count store then
    invalid_arg "Heap.iter_page: no such data page";
  (* Snapshot the live slots first so the callback may mutate the page
     (the combined fix-up/refresh scan updates the entry it visits). *)
  let slots =
    Buffer_pool.with_page t.pool p (fun page ->
        (`Clean, Page.fold_live page ~init:[] ~f:(fun acc slot record -> (slot, record) :: acc)))
  in
  List.iter
    (fun (slot, record) -> f (Addr.make ~page:p ~slot) (Tuple.decode_exactly record))
    (List.rev slots)

let iter_page_arena t ~arena ~page:p f =
  let store = Buffer_pool.store t.pool in
  if p < 1 || p >= Page_store.page_count store then
    invalid_arg "Heap.iter_page: no such data page";
  Buffer_pool.with_page t.pool p (fun page ->
      Decode_arena.load arena page;
      (`Clean, ()));
  Decode_arena.iter arena (fun slot tuple -> f (Addr.make ~page:p ~slot) tuple)

let iter t f =
  let store = Buffer_pool.store t.pool in
  for p = 1 to Page_store.page_count store - 1 do
    iter_page t ~page:p f
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun addr tuple -> acc := f !acc addr tuple);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc addr tuple -> (addr, tuple) :: acc))

let first_addr t =
  let exception Found of Addr.t in
  try
    iter t (fun addr _ -> raise (Found addr));
    None
  with Found a -> Some a

let last_addr t =
  fold t ~init:None ~f:(fun _ addr _ -> Some addr)

let flush t = Buffer_pool.flush_all t.pool

let validate t =
  let store = Buffer_pool.store t.pool in
  let problem = ref None in
  (try
     for p = 1 to Page_store.page_count store - 1 do
       Buffer_pool.with_page t.pool p (fun page ->
           (match Page.validate page with
           | Ok () ->
             Page.iter_live page (fun slot record ->
                 match Tuple.decode_exactly record with
                 | (_ : Tuple.t) -> ()
                 | exception Failure e ->
                   problem := Some (Printf.sprintf "page %d slot %d: %s" p slot e))
           | Error e -> problem := Some (Printf.sprintf "page %d: %s" p e));
           (`Clean, ()))
     done
   with Failure e -> problem := Some e);
  match !problem with None -> Ok () | Some e -> Error e
