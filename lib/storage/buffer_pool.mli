(** Buffer pool: a fixed-capacity LRU cache of page frames over a
    {!Page_store}.

    Callers obtain a {!Page.t} view of a frame with {!with_page} (pin,
    use, unpin) and mark it dirty if they modified it; dirty frames are
    written back on eviction or {!flush_all}.

    The pool is domain-safe for concurrent readers: the resident-page
    table is lock-striped by page number, so parallel scan domains
    pinning distinct pages take disjoint locks, while misses, eviction,
    and whole-pool operations serialize behind a global lock.  No frame
    is ever evicted while pinned, and {!stats} counters are exact under
    concurrency.  Run on a single domain the pool's observable behavior
    (hit/miss/eviction sequence, LRU victims, stats) is identical to the
    unstriped design. *)

type t

type policy =
  | Lru  (** exact least-recently-used (default) *)
  | Second_chance  (** clock sweep with reference bits — cheaper bookkeeping *)

val create : ?frames:int -> ?policy:policy -> Page_store.t -> t
(** [frames] defaults to 128.  Raises [Invalid_argument] if [frames < 1]. *)

val store : t -> Page_store.t

val with_page : t -> int -> (Page.t -> [ `Clean | `Dirty ] * 'a) -> 'a
(** [with_page t n f] pins page [n], applies [f] to its in-frame image, and
    unpins.  If [f] returns [`Dirty] the frame is marked dirty.  Nested
    [with_page] on distinct pages is allowed; re-entering the same page is
    allowed and pins are counted.  Raises [Page_store.Bad_page] for an
    unknown page and [Failure] if every frame is pinned. *)

val allocate_page : t -> int
(** Allocate a fresh page in the store and return its number. *)

val flush_all : t -> unit
(** Write back every dirty frame (frames stay cached).  Write-back is
    range-aware: when a page's tracked dirty ranges ({!Page.dirty_ranges})
    cover well under the full page, only those ranges are written
    ({!Page_store.write_range}), cutting write amplification. *)

val dirty_pages : t -> int list
(** Page numbers of currently dirty frames, ascending — the work list a
    fuzzy checkpoint snapshots before flushing page by page. *)

val writeback_page : t -> int -> int
(** Write back one page's frame if it is cached and dirty; returns the
    bytes written (0 if clean or not resident).  The checkpoint's unit of
    progress: flushing one page at a time leaves room to interleave
    updaters between pages. *)

val invalidate : t -> unit
(** Drop all frames (must be none pinned); dirty frames are flushed first.
    Used by crash-recovery tests to simulate losing volatile state. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  writeback_bytes : int;  (** bytes actually written back *)
  writeback_bytes_saved : int;
      (** page bytes the range-aware write-back avoided writing *)
}

val stats : t -> stats
