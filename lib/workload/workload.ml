open Snapdiff_storage
module Expr = Snapdiff_expr.Expr
module Rng = Snapdiff_util.Rng
module Base_table = Snapdiff_core.Base_table

let schema =
  Schema.make
    [
      Schema.col ~nullable:false "id" Value.Tint;
      Schema.col ~nullable:false "name" Value.Tstring;
      Schema.col ~nullable:false "qual" Value.Tint;
      Schema.col ~nullable:false "payload" Value.Tint;
    ]

let qual_domain = 100_000

let restrict_fraction q =
  if q < 0.0 || q > 1.0 then invalid_arg "Workload.restrict_fraction";
  let threshold = int_of_float (Float.round (q *. float_of_int qual_domain)) in
  Expr.(col "qual" <. int threshold)

let make_base ?mode ?wal ?(name = "emp") ?page_size ?frames ~clock () =
  Base_table.create ?mode ?page_size ?frames ?wal ~name ~clock schema

let row ~id ~qual ~payload =
  Tuple.make
    [ Value.int id; Value.str (Printf.sprintf "emp%06d" id); Value.int qual;
      Value.int payload ]

let populate base ~rng ~n =
  for id = 0 to n - 1 do
    ignore
      (Base_table.insert base (row ~id ~qual:(Rng.int rng qual_domain) ~payload:0)
        : Addr.t)
  done

type mutation_mix = {
  update_weight : int;
  insert_weight : int;
  delete_weight : int;
  qual_flip : bool;
}

let payload_updates_only =
  { update_weight = 1; insert_weight = 0; delete_weight = 0; qual_flip = false }

let churn = { update_weight = 3; insert_weight = 1; delete_weight = 1; qual_flip = true }

let pick_op rng mix =
  let total = mix.update_weight + mix.insert_weight + mix.delete_weight in
  if total <= 0 then invalid_arg "Workload: empty mutation mix";
  let r = Rng.int rng total in
  if r < mix.update_weight then `Update
  else if r < mix.update_weight + mix.insert_weight then `Insert
  else `Delete

let int_field tuple i =
  match Tuple.get tuple i with
  | Value.Int v -> Int64.to_int v
  | _ -> invalid_arg "Workload: non-int field"

let apply_update base rng mix addr =
  match Base_table.get base addr with
  | None -> ()
  | Some tuple ->
    let qual =
      if mix.qual_flip then Rng.int rng qual_domain else int_field tuple 2
    in
    let updated =
      row ~id:(int_field tuple 0) ~qual ~payload:(int_field tuple 3 + 1)
    in
    Base_table.update base addr updated

let apply_insert base rng =
  (* Ids are labels, not keys: a random one keeps runs reproducible from
     the generator seed alone. *)
  let id = 1_000_000 + Rng.int rng 1_000_000_000 in
  ignore
    (Base_table.insert base (row ~id ~qual:(Rng.int rng qual_domain) ~payload:0) : Addr.t)

let update_fraction base ~rng ~u ~mix =
  if u < 0.0 || u > 1.0 then invalid_arg "Workload.update_fraction: u out of range";
  let addrs = Array.of_list (List.map fst (Base_table.to_user_list base)) in
  let n = Array.length addrs in
  let k = int_of_float (Float.round (u *. float_of_int n)) in
  let chosen = Rng.sample_without_replacement rng k n in
  let ops = ref 0 in
  Array.iter
    (fun i ->
      incr ops;
      match pick_op rng mix with
      | `Update -> apply_update base rng mix addrs.(i)
      | `Delete -> (
        match Base_table.get base addrs.(i) with
        | Some _ -> Base_table.delete base addrs.(i)
        | None -> ())
      | `Insert -> apply_insert base rng)
    chosen;
  !ops

let mutate_zipf base ~rng ~ops ~theta ~mix =
  let addrs = Array.of_list (List.map fst (Base_table.to_user_list base)) in
  if Array.length addrs = 0 then invalid_arg "Workload.mutate_zipf: empty table";
  let deleted = Hashtbl.create 64 in
  for _ = 1 to ops do
    let i = Rng.zipf rng ~n:(Array.length addrs) ~theta in
    let addr = addrs.(i) in
    match pick_op rng mix with
    | `Update -> if not (Hashtbl.mem deleted addr) then apply_update base rng mix addr
    | `Delete ->
      if not (Hashtbl.mem deleted addr) then begin
        Base_table.delete base addr;
        Hashtbl.replace deleted addr ()
      end
    | `Insert -> apply_insert base rng
  done
