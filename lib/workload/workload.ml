open Snapdiff_storage
module Expr = Snapdiff_expr.Expr
module Rng = Snapdiff_util.Rng
module Base_table = Snapdiff_core.Base_table

let schema =
  Schema.make
    [
      Schema.col ~nullable:false "id" Value.Tint;
      Schema.col ~nullable:false "name" Value.Tstring;
      Schema.col ~nullable:false "qual" Value.Tint;
      Schema.col ~nullable:false "payload" Value.Tint;
    ]

let qual_domain = 100_000

let restrict_fraction q =
  if q < 0.0 || q > 1.0 then invalid_arg "Workload.restrict_fraction";
  let threshold = int_of_float (Float.round (q *. float_of_int qual_domain)) in
  Expr.(col "qual" <. int threshold)

let make_base ?mode ?wal ?(name = "emp") ?page_size ?frames ~clock () =
  Base_table.create ?mode ?page_size ?frames ?wal ~name ~clock schema

let row ~id ~qual ~payload =
  Tuple.make
    [ Value.int id; Value.str (Printf.sprintf "emp%06d" id); Value.int qual;
      Value.int payload ]

let populate base ~rng ~n =
  for id = 0 to n - 1 do
    ignore
      (Base_table.insert base (row ~id ~qual:(Rng.int rng qual_domain) ~payload:0)
        : Addr.t)
  done

type mutation_mix = {
  update_weight : int;
  insert_weight : int;
  delete_weight : int;
  qual_flip : bool;
}

let payload_updates_only =
  { update_weight = 1; insert_weight = 0; delete_weight = 0; qual_flip = false }

let churn = { update_weight = 3; insert_weight = 1; delete_weight = 1; qual_flip = true }

let pick_op rng mix =
  let total = mix.update_weight + mix.insert_weight + mix.delete_weight in
  if total <= 0 then invalid_arg "Workload: empty mutation mix";
  let r = Rng.int rng total in
  if r < mix.update_weight then `Update
  else if r < mix.update_weight + mix.insert_weight then `Insert
  else `Delete

let int_field tuple i =
  match Tuple.get tuple i with
  | Value.Int v -> Int64.to_int v
  | _ -> invalid_arg "Workload: non-int field"

let apply_update base rng mix addr =
  match Base_table.get base addr with
  | None -> ()
  | Some tuple ->
    let qual =
      if mix.qual_flip then Rng.int rng qual_domain else int_field tuple 2
    in
    let updated =
      row ~id:(int_field tuple 0) ~qual ~payload:(int_field tuple 3 + 1)
    in
    Base_table.update base addr updated

let apply_insert base rng =
  (* Ids are labels, not keys: a random one keeps runs reproducible from
     the generator seed alone. *)
  let id = 1_000_000 + Rng.int rng 1_000_000_000 in
  ignore
    (Base_table.insert base (row ~id ~qual:(Rng.int rng qual_domain) ~payload:0) : Addr.t)

let update_fraction base ~rng ~u ~mix =
  if u < 0.0 || u > 1.0 then invalid_arg "Workload.update_fraction: u out of range";
  if mix.update_weight + mix.insert_weight + mix.delete_weight <= 0 then
    invalid_arg "Workload: empty mutation mix";
  let addrs = Array.of_list (List.map fst (Base_table.to_user_list base)) in
  let n = Array.length addrs in
  let k = int_of_float (Float.round (u *. float_of_int n)) in
  let chosen = Rng.sample_without_replacement rng k n in
  (* Inserts are drawn outside the without-replacement sample: each of the
     [k] chosen live rows receives exactly one update-or-delete, so the
     realized mutated fraction is exactly [u].  Inserts still arrive at the
     mix's relative rate — for each touched row, every [`Insert] drawn
     before the row's own op lands adds a fresh tuple instead of burning
     the sampled address. *)
  let touch_weight = mix.update_weight + mix.delete_weight in
  let ops = ref 0 in
  Array.iter
    (fun i ->
      if touch_weight = 0 then begin
        incr ops;
        apply_insert base rng
      end
      else begin
        let rec step () =
          incr ops;
          match pick_op rng mix with
          | `Insert ->
            apply_insert base rng;
            step ()
          | `Update -> apply_update base rng mix addrs.(i)
          | `Delete -> Base_table.delete base addrs.(i)
        in
        step ()
      end)
    chosen;
  !ops

let mutate_zipf base ~rng ~ops ~theta ~mix =
  let addrs = Array.of_list (List.map fst (Base_table.to_user_list base)) in
  if Array.length addrs = 0 then invalid_arg "Workload.mutate_zipf: empty table";
  let n = Array.length addrs in
  let deleted = Hashtbl.create 64 in
  let applied = ref 0 in
  (* A draw that lands an Update/Delete on an address this run already
     deleted is not an operation; resample (bounded) so the effective
     churn stays at the nominal rate even when skew kills the hot
     addresses early.  The bound only bites once nearly every live-at-
     start address has been deleted. *)
  let max_tries = 64 in
  for _ = 1 to ops do
    let rec attempt tries =
      if tries < max_tries then begin
        let addr = addrs.(Rng.zipf rng ~n ~theta) in
        match pick_op rng mix with
        | `Insert ->
          apply_insert base rng;
          incr applied
        | `Update ->
          if Hashtbl.mem deleted addr then attempt (tries + 1)
          else begin
            apply_update base rng mix addr;
            incr applied
          end
        | `Delete ->
          if Hashtbl.mem deleted addr then attempt (tries + 1)
          else begin
            Base_table.delete base addr;
            Hashtbl.replace deleted addr ();
            incr applied
          end
      end
    in
    attempt 0
  done;
  !applied

(* --- Multi-tenant arrival processes (fleet bench) --------------------- *)

type tenant = {
  tenant_id : int;
  tenant_size : int;
  tenant_rate : float;
  tenant_burst : float;
  tenant_theta : float;
  mutable tenant_bursting : bool;
}

let pareto rng ~alpha ~xmin =
  if alpha <= 0.0 then invalid_arg "Workload.pareto: alpha must be positive";
  if xmin <= 0.0 then invalid_arg "Workload.pareto: xmin must be positive";
  let u = 1.0 -. Rng.float rng 1.0 in
  xmin /. Float.pow u (1.0 /. alpha)

let make_tenants ~rng ~tenants ?(min_size = 64) ?(max_size = 8192) () =
  if tenants <= 0 then invalid_arg "Workload.make_tenants: tenants must be positive";
  if min_size <= 0 || max_size < min_size then
    invalid_arg "Workload.make_tenants: bad size bounds";
  Array.init tenants (fun tenant_id ->
      let tenant_size =
        min max_size (int_of_float (pareto rng ~alpha:1.2 ~xmin:(float_of_int min_size)))
      in
      (* Mean rates log-uniform over two decades; bursts are a
         heavy-tailed multiplier so a few tenants dominate when on. *)
      let tenant_rate = 10.0 *. Float.pow 10.0 (Rng.float rng 2.0) in
      let tenant_burst = min 50.0 (pareto rng ~alpha:1.5 ~xmin:2.0) in
      let tenant_theta = Rng.float rng 0.99 in
      { tenant_id; tenant_size; tenant_rate; tenant_burst; tenant_theta;
        tenant_bursting = false })

let gauss rng =
  (* Box-Muller; u1 bounded away from 0. *)
  let u1 = 1e-12 +. Rng.float rng 1.0 in
  let u2 = Rng.float rng 1.0 in
  Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)

let poisson rng lambda =
  if lambda < 0.0 then invalid_arg "Workload.poisson: negative rate";
  if lambda = 0.0 then 0
  else if lambda > 256.0 then
    (* Normal approximation keeps large-lambda draws O(1). *)
    max 0 (int_of_float (Float.round (lambda +. (Float.sqrt lambda *. gauss rng))))
  else begin
    let l = Float.exp (-.lambda) in
    let k = ref 0 and p = ref 1.0 in
    let continue = ref true in
    while !continue do
      incr k;
      p := !p *. Rng.float rng 1.0;
      if !p <= l then continue := false
    done;
    !k - 1
  end

(* Two-state (on/off) Markov-modulated Poisson arrivals: a quiet tenant
   starts a burst with probability [p_on] per step, a bursting one cools
   off with probability [p_off], so bursts last ~1/p_off steps. *)
let burst_p_on = 0.05
let burst_p_off = 0.25

let arrivals rng tenant ~dt_s =
  if dt_s < 0.0 then invalid_arg "Workload.arrivals: negative dt";
  if tenant.tenant_bursting then begin
    if Rng.bernoulli rng burst_p_off then tenant.tenant_bursting <- false
  end
  else if Rng.bernoulli rng burst_p_on then tenant.tenant_bursting <- true;
  let rate =
    if tenant.tenant_bursting then tenant.tenant_rate *. tenant.tenant_burst
    else tenant.tenant_rate
  in
  poisson rng (rate *. dt_s)
