(** Synthetic workloads for the evaluation.

    The paper's two experiment parameters are "the amount of update
    activity on the base table since the last refresh, and the degree to
    which the base table is restricted by the snapshot".  This module
    provides the standard employee-style table whose [qual] column is
    uniform in [0, 100000), so a predicate [qual < q * 100000] has exact
    selectivity [q]; {!update_fraction} then touches a chosen fraction of
    {e distinct} tuples between refreshes. *)

open Snapdiff_storage
open Snapdiff_txn
module Expr = Snapdiff_expr.Expr
module Rng = Snapdiff_util.Rng
module Base_table = Snapdiff_core.Base_table

val schema : Schema.t
(** [(id INT NOT NULL, name STRING NOT NULL, qual INT NOT NULL,
     payload INT NOT NULL)]. *)

val qual_domain : int
(** 100000 — [qual] is uniform in [\[0, qual_domain)]. *)

val restrict_fraction : float -> Expr.t
(** [restrict_fraction q] qualifies a [q] fraction of tuples. *)

val make_base :
  ?mode:Base_table.mode ->
  ?wal:Snapdiff_wal.Wal.t ->
  ?name:string ->
  ?page_size:int ->
  ?frames:int ->
  clock:Clock.t ->
  unit ->
  Base_table.t
(** [frames] sizes the buffer pool (see {!Base_table.create}); the
    parallel-scan bench sizes it to hold the whole table so the sweep
    measures decode bandwidth, not store faulting. *)

val populate : Base_table.t -> rng:Rng.t -> n:int -> unit
(** Insert [n] rows with uniform [qual] and sequential ids. *)

type mutation_mix = {
  update_weight : int;
  insert_weight : int;
  delete_weight : int;
  qual_flip : bool;
      (** if true, updates re-randomize [qual] (entries can enter/leave the
          snapshot); if false, updates touch only [payload] (the Figure 8/9
          model) *)
}

val payload_updates_only : mutation_mix
(** Updates only, payload only — the paper's evaluation model. *)

val churn : mutation_mix
(** 60% updates (with qual flips), 20% inserts, 20% deletes. *)

val update_fraction :
  Base_table.t -> rng:Rng.t -> u:float -> mix:mutation_mix -> int
(** Touch [u * count] distinct live tuples (rounded); each touched tuple
    receives one mutation drawn from [mix] (an insert adds a fresh tuple
    instead of touching one).  Returns the number of operations performed.
    Address selection is uniform. *)

val mutate_zipf :
  Base_table.t -> rng:Rng.t -> ops:int -> theta:float -> mix:mutation_mix -> unit
(** [ops] mutations with zipf-skewed (not necessarily distinct) address
    selection — the skew ablation. *)
