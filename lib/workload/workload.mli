(** Synthetic workloads for the evaluation.

    The paper's two experiment parameters are "the amount of update
    activity on the base table since the last refresh, and the degree to
    which the base table is restricted by the snapshot".  This module
    provides the standard employee-style table whose [qual] column is
    uniform in [0, 100000), so a predicate [qual < q * 100000] has exact
    selectivity [q]; {!update_fraction} then touches a chosen fraction of
    {e distinct} tuples between refreshes. *)

open Snapdiff_storage
open Snapdiff_txn
module Expr = Snapdiff_expr.Expr
module Rng = Snapdiff_util.Rng
module Base_table = Snapdiff_core.Base_table

val schema : Schema.t
(** [(id INT NOT NULL, name STRING NOT NULL, qual INT NOT NULL,
     payload INT NOT NULL)]. *)

val qual_domain : int
(** 100000 — [qual] is uniform in [\[0, qual_domain)]. *)

val restrict_fraction : float -> Expr.t
(** [restrict_fraction q] qualifies a [q] fraction of tuples. *)

val make_base :
  ?mode:Base_table.mode ->
  ?wal:Snapdiff_wal.Wal.t ->
  ?name:string ->
  ?page_size:int ->
  ?frames:int ->
  clock:Clock.t ->
  unit ->
  Base_table.t
(** [frames] sizes the buffer pool (see {!Base_table.create}); the
    parallel-scan bench sizes it to hold the whole table so the sweep
    measures decode bandwidth, not store faulting. *)

val populate : Base_table.t -> rng:Rng.t -> n:int -> unit
(** Insert [n] rows with uniform [qual] and sequential ids. *)

type mutation_mix = {
  update_weight : int;
  insert_weight : int;
  delete_weight : int;
  qual_flip : bool;
      (** if true, updates re-randomize [qual] (entries can enter/leave the
          snapshot); if false, updates touch only [payload] (the Figure 8/9
          model) *)
}

val payload_updates_only : mutation_mix
(** Updates only, payload only — the paper's evaluation model. *)

val churn : mutation_mix
(** 60% updates (with qual flips), 20% inserts, 20% deletes. *)

val update_fraction :
  Base_table.t -> rng:Rng.t -> u:float -> mix:mutation_mix -> int
(** Touch exactly [u * count] distinct live tuples (rounded); each touched
    tuple receives one update-or-delete from [mix].  Inserts are drawn
    {e outside} the without-replacement sample (at the mix's relative
    rate), so the realized mutated fraction is exactly [u] — an insert
    never burns a sampled address.  Returns the total number of operations
    performed (touches plus inserts).  Address selection is uniform. *)

val mutate_zipf :
  Base_table.t -> rng:Rng.t -> ops:int -> theta:float -> mix:mutation_mix -> int
(** [ops] mutations with zipf-skewed (not necessarily distinct) address
    selection — the skew ablation.  A draw landing an update/delete on an
    address already deleted by this run is resampled (bounded), so the
    applied-op count — which is returned — stays at the nominal [ops]
    until the table is nearly exhausted. *)

(** {2 Multi-tenant arrival processes}

    Drive the fleet-scheduler bench: many bases of heavy-tailed size, each
    mutated by a bursty (Markov-modulated Poisson) updater with its own
    mean rate and address skew.  All simulated time; [dt_s] is seconds of
    virtual time per step. *)

type tenant = {
  tenant_id : int;
  tenant_size : int;  (** base-table rows (Pareto-distributed, bounded) *)
  tenant_rate : float;  (** mean mutations per simulated second *)
  tenant_burst : float;  (** rate multiplier while bursting *)
  tenant_theta : float;  (** zipf skew of the tenant's address selection *)
  mutable tenant_bursting : bool;
}

val pareto : Rng.t -> alpha:float -> xmin:float -> float
(** Heavy-tailed draw: [xmin / U^(1/alpha)]. *)

val make_tenants :
  rng:Rng.t -> tenants:int -> ?min_size:int -> ?max_size:int -> unit -> tenant array
(** Tenant population with Pareto sizes in [\[min_size, max_size\]]
    (defaults 64, 8192), log-uniform mean rates over two decades, and
    heavy-tailed burst multipliers. *)

val poisson : Rng.t -> float -> int
(** Poisson-distributed count with the given mean (normal approximation
    above mean 256). *)

val arrivals : Rng.t -> tenant -> dt_s:float -> int
(** Mutations this tenant issues over the next [dt_s] of simulated time:
    Poisson at the tenant's current rate, which toggles between mean and
    burst level via a two-state Markov chain advanced once per call. *)
