(** Log-driven recovery and change extraction.

    {!redo} rebuilds table state by physically replaying the committed work
    in the log (insert-at-rid / update / delete), the classic redo pass.

    {!net_changes} is the machinery behind the paper's "use the recovery
    log as the change buffer" alternative refresh method: scan the log from
    the snapshot's last-refresh point, keep only *committed* records for
    the table of interest, and fold multiple changes to the same address
    into their net effect.  The returned {!scan_stats} expose exactly the
    costs the paper warns about (the whole log tail is scanned; only a
    small fraction is relevant). *)

open Snapdiff_storage

val redo : Wal.t -> (string -> Heap.t option) -> unit
(** [redo log resolve] replays all committed work retained in the log onto
    the heaps returned by [resolve]; tables that resolve to [None] are
    skipped.  The heaps are expected to be empty (fresh stores after a
    crash) — or, when the log has been truncated, restored from a
    checkpoint taken at or after {!Wal.oldest_retained}. *)

type net = {
  before : Tuple.t option;
      (** state when the window opened; [None] = did not exist *)
  after : Tuple.t option;  (** committed state now; [None] = deleted *)
}

type scan_stats = {
  records_scanned : int;  (** log records examined *)
  bytes_scanned : int;
      (** log bytes actually read — measured from [since] clamped into
          [{!Wal.oldest_retained}, {!Wal.end_lsn}], so truncation can never
          make this negative or overstate the scan *)
  relevant : int;  (** committed records touching the requested table *)
}

val net_changes :
  Wal.t -> table:string -> since:Wal.lsn -> (Addr.t * net) list * scan_stats
(** Net committed effect per address, in address order.  Addresses whose
    before and after states are equal (including inserted-then-deleted
    inside the window) are omitted.  Uncommitted and aborted transactions
    are excluded (a commit record must appear in the log).  The before
    value is what lets a refresh method decide whether a deleted or
    updated entry *used to* qualify for a snapshot.  A [since] older than
    {!Wal.oldest_retained} (the log was truncated since the snapshot's
    last refresh) scans from the oldest retained record instead of
    failing. *)
