module Metrics = Snapdiff_obs.Metrics

let m_appends = Metrics.counter Metrics.global "wal.appends"
let m_append_bytes = Metrics.counter Metrics.global "wal.append_bytes"
let m_truncations = Metrics.counter Metrics.global "wal.truncations"
let m_fsyncs = Metrics.counter Metrics.global "wal.fsyncs"

type lsn = int

type t = {
  mutable buf : Buffer.t;
  mutable count : int;
  mutable base : lsn;  (* LSN of the first retained byte *)
  per_table : (string, lsn) Hashtbl.t;  (* table -> LSN of its latest record *)
}

let start_lsn = 0

let create () =
  { buf = Buffer.create 4096; count = 0; base = 0; per_table = Hashtbl.create 8 }

let append t r =
  let at = t.base + Buffer.length t.buf in
  Record.encode t.buf r;
  t.count <- t.count + 1;
  (match Record.table_of r with
  | Some table -> Hashtbl.replace t.per_table table at
  | None -> ());
  Metrics.incr m_appends;
  Metrics.add m_append_bytes (t.base + Buffer.length t.buf - at);
  at

let last_lsn_for t ~table = Hashtbl.find_opt t.per_table table

let end_lsn t = t.base + Buffer.length t.buf

let oldest_retained t = t.base

let record_count t = t.count

let byte_size t = Buffer.length t.buf

let image t = Buffer.to_bytes t.buf

let read t lsn =
  let b = image t in
  if lsn < t.base || lsn >= t.base + Bytes.length b then failwith "Wal.read: bad LSN";
  let r, off = Record.decode b (lsn - t.base) in
  (r, off + t.base)

let iter_from t lsn f =
  let b = image t in
  let len = Bytes.length b in
  if lsn < t.base || lsn > t.base + len then failwith "Wal.iter_from: bad LSN";
  let rec go off =
    if off < len then begin
      let r, off' = Record.decode b off in
      f (off + t.base) r;
      go off'
    end
  in
  go (lsn - t.base)

let truncate_before t lsn =
  if lsn < t.base || lsn > end_lsn t then failwith "Wal.truncate_before: bad LSN";
  if lsn > t.base then begin
    let b = image t in
    (* Count the discarded records and verify the boundary by decoding. *)
    let rec skip off dropped =
      if off < lsn - t.base then begin
        let _, off' = Record.decode b off in
        skip off' (dropped + 1)
      end
      else if off = lsn - t.base then dropped
      else failwith "Wal.truncate_before: LSN is not a record boundary"
    in
    let dropped = skip 0 0 in
    let fresh = Buffer.create (max 4096 (Bytes.length b - (lsn - t.base))) in
    Buffer.add_subbytes fresh b (lsn - t.base) (Bytes.length b - (lsn - t.base));
    t.buf <- fresh;
    t.count <- t.count - dropped;
    t.base <- lsn;
    Metrics.incr m_truncations
  end

let fold_from t lsn ~init ~f =
  let acc = ref init in
  iter_from t lsn (fun l r -> acc := f !acc l r);
  !acc

let to_list t =
  List.rev (fold_from t t.base ~init:[] ~f:(fun acc l r -> (l, r) :: acc))

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "WALLOG01";
      let base = Bytes.create 8 in
      Bytes.set_int64_le base 0 (Int64.of_int t.base);
      output_bytes oc base;
      output_bytes oc (image t);
      flush oc;
      Metrics.incr m_fsyncs)

let load path =
  let ic = open_in_bin path in
  let b =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if String.length b < 16 || String.sub b 0 8 <> "WALLOG01" then
    failwith "Wal.load: bad log image";
  let base = Int64.to_int (Bytes.get_int64_le (Bytes.of_string b) 8) in
  let b = String.sub b 16 (String.length b - 16) in
  let t = create () in
  t.base <- base;
  Buffer.add_string t.buf b;
  (* Rebuild the record count and the per-table latest-LSN map by decoding
     the image; this also validates it. *)
  let bb = Buffer.to_bytes t.buf in
  let len = Bytes.length bb in
  let rec go off =
    if off < len then begin
      let r, off' = Record.decode bb off in
      (match Record.table_of r with
      | Some table -> Hashtbl.replace t.per_table table (t.base + off)
      | None -> ());
      t.count <- t.count + 1;
      go off'
    end
  in
  go 0;
  t
