module Metrics = Snapdiff_obs.Metrics
module Trace = Snapdiff_obs.Trace

let m_appends = Metrics.counter Metrics.global "wal.appends"
let m_append_bytes = Metrics.counter Metrics.global "wal.append_bytes"
let m_truncations = Metrics.counter Metrics.global "wal.truncations"
let m_fsyncs = Metrics.counter Metrics.global "wal.fsyncs"
let m_torn_tails = Metrics.counter Metrics.global "wal.torn_tails"
let h_group_batch = Metrics.histogram Metrics.global "wal.group_commit_batch"

type lsn = int

type backend = Memory | File of string

(* On-disk segment format:

   {v
   +----------+-----------+--------------------------------·····--+
   | WALSEG01 | base (i64) | frame | frame | frame | ...           |
   +----------+-----------+--------------------------------·····--+
   v}

   Each frame is [u32 payload length | u32 FNV-1a checksum | payload],
   little-endian, where the payload is exactly one {!Record.encode} image.
   LSNs remain byte offsets into the {e unframed} logical log (the
   in-memory image), so framing overhead never shifts an LSN; they are
   recomputed on {!open_file} by re-accumulating payload lengths. *)

let segment_magic = "WALSEG01"
let segment_header_size = 16
let frame_header_size = 8

type file_state = {
  mutable fd : Unix.file_descr;  (* swapped when truncation renames a fresh segment in *)
  path : string;
  window : int;  (* commits per fsync; 1 = fsync every commit *)
  mutable pending_commits : int;  (* commits written since the last fsync *)
  mutable unsynced : bool;  (* any bytes written since the last fsync *)
  mutable fsync_count : int;  (* real fsyncs issued on this segment *)
  mutable durable_lsn : lsn;  (* end_lsn as of the last fsync *)
}

type t = {
  mutable buf : Buffer.t;
  mutable count : int;
  mutable base : lsn;  (* LSN of the first retained byte *)
  per_table : (string, lsn) Hashtbl.t;  (* table -> LSN of its latest record *)
  file : file_state option;
}

let start_lsn = 0

let default_group_commit_window = 8

let fnv1a s =
  let h = ref 0x811C9DC5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF) s;
  !h

let really_write fd b =
  let len = Bytes.length b in
  let rec go pos =
    if pos < len then begin
      let k = Unix.write fd b pos (len - pos) in
      go (pos + k)
    end
  in
  go 0

let segment_header base =
  let b = Bytes.make segment_header_size '\000' in
  Bytes.blit_string segment_magic 0 b 0 8;
  Bytes.set_int64_le b 8 (Int64.of_int base);
  b

let frame_of_payload payload =
  let len = String.length payload in
  let b = Bytes.create (frame_header_size + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Int32.of_int (fnv1a payload));
  Bytes.blit_string payload 0 b frame_header_size len;
  b

let tmp_path path = path ^ ".tmp"

(* Make a just-renamed segment's directory entry durable.  Some
   filesystems reject fsync on a directory fd; treat that as best-effort
   rather than failing the truncation. *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dirfd ->
    Fun.protect
      ~finally:(fun () -> Unix.close dirfd)
      (fun () -> try Unix.fsync dirfd with Unix.Unix_error _ -> ())

let mark_synced t fs =
  fs.fsync_count <- fs.fsync_count + 1;
  Metrics.incr m_fsyncs;
  if fs.pending_commits > 0 then
    Metrics.observe h_group_batch (float_of_int fs.pending_commits);
  fs.pending_commits <- 0;
  fs.unsynced <- false;
  fs.durable_lsn <- t.base + Buffer.length t.buf

let do_fsync t fs =
  Trace.with_span "wal.fsync" (fun () -> Unix.fsync fs.fd);
  mark_synced t fs

let mk ?file () =
  { buf = Buffer.create 4096; count = 0; base = 0; per_table = Hashtbl.create 8; file }

let create ?(backend = Memory) ?group_commit_window () =
  let window = Option.value group_commit_window ~default:default_group_commit_window in
  if window < 1 then invalid_arg "Wal.create: group_commit_window < 1";
  match backend with
  | Memory -> mk ()
  | File path ->
    (try Sys.remove (tmp_path path) with Sys_error _ -> ());
    let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    really_write fd (segment_header 0);
    mk
      ~file:
        { fd; path; window; pending_commits = 0; unsynced = true; fsync_count = 0;
          durable_lsn = 0 }
      ()

let backend t = match t.file with None -> Memory | Some fs -> File fs.path

let group_commit_window t = match t.file with None -> 1 | Some fs -> fs.window

let fsyncs t = match t.file with None -> 0 | Some fs -> fs.fsync_count

let durable_end_lsn t =
  match t.file with
  | None -> t.base + Buffer.length t.buf
  | Some fs -> fs.durable_lsn

let sync t =
  match t.file with
  | None -> ()
  | Some fs -> if fs.unsynced || fs.pending_commits > 0 then do_fsync t fs

let close t =
  match t.file with
  | None -> ()
  | Some fs ->
    sync t;
    Unix.close fs.fd

let append t r =
  let at = t.base + Buffer.length t.buf in
  let start = Buffer.length t.buf in
  Record.encode t.buf r;
  t.count <- t.count + 1;
  (match Record.table_of r with
  | Some table -> Hashtbl.replace t.per_table table at
  | None -> ());
  (match t.file with
  | None -> ()
  | Some fs ->
    let payload = Buffer.sub t.buf start (Buffer.length t.buf - start) in
    really_write fs.fd (frame_of_payload payload);
    fs.unsynced <- true;
    (* Group commit: Commit records share one fsync per [window] commits;
       everything else rides along un-synced until the next window flush
       (or an explicit {!sync}). *)
    (match r with
    | Record.Commit _ ->
      fs.pending_commits <- fs.pending_commits + 1;
      if fs.pending_commits >= fs.window then do_fsync t fs
    | _ -> ()));
  Metrics.incr m_appends;
  Metrics.add m_append_bytes (t.base + Buffer.length t.buf - at);
  at

let last_lsn_for t ~table = Hashtbl.find_opt t.per_table table

let end_lsn t = t.base + Buffer.length t.buf

let oldest_retained t = t.base

let record_count t = t.count

let byte_size t = Buffer.length t.buf

let image t = Buffer.to_bytes t.buf

let read t lsn =
  let b = image t in
  if lsn < t.base || lsn >= t.base + Bytes.length b then failwith "Wal.read: bad LSN";
  let r, off = Record.decode b (lsn - t.base) in
  (r, off + t.base)

let iter_from t lsn f =
  let b = image t in
  let len = Bytes.length b in
  if lsn < t.base || lsn > t.base + len then failwith "Wal.iter_from: bad LSN";
  let rec go off =
    if off < len then begin
      let r, off' = Record.decode b off in
      f (off + t.base) r;
      go off'
    end
  in
  go (lsn - t.base)

(* Rewrite the whole segment from the retained in-memory image: fresh
   header carrying the new base, then one frame per retained record.
   Segment truncation is rare (checkpoint-driven), so a full rewrite is
   acceptable.

   The rewrite must never modify the live segment in place: a crash
   mid-overwrite would leave new frames mixed with stale old bytes, and
   {!open_file}'s torn-tail scan — which truncates at the first bad
   frame — would silently drop previously fsync-durable records above the
   mix point.  Instead the new segment is written to a sibling temp file,
   fsynced, then [rename(2)]d over the old path (the atomic commit point)
   and the directory fsynced: a crash at any instant leaves either the
   complete old segment (plus an ignorable temp file) or the complete new
   one, never a hybrid. *)
let rewrite_file t fs =
  let out = Buffer.create (segment_header_size + Buffer.length t.buf) in
  Buffer.add_bytes out (segment_header t.base);
  let b = image t in
  let len = Bytes.length b in
  let rec go off =
    if off < len then begin
      let _, off' = Record.decode b off in
      Buffer.add_bytes out (frame_of_payload (Bytes.sub_string b off (off' - off)));
      go off'
    end
  in
  go 0;
  let tmp = tmp_path fs.path in
  let tmp_fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (try
     really_write tmp_fd (Buffer.to_bytes out);
     Trace.with_span "wal.fsync" (fun () -> Unix.fsync tmp_fd);
     Unix.close tmp_fd
   with e ->
     (try Unix.close tmp_fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Unix.rename tmp fs.path;
  fsync_dir fs.path;
  (* The old fd still names the now-unlinked old segment: swap in the new
     one, positioned at its end for subsequent appends. *)
  Unix.close fs.fd;
  let fd = Unix.openfile fs.path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  fs.fd <- fd;
  (* The temp-file fsync made everything (pending commits included)
     durable; account for it as this rewrite's one real fsync. *)
  mark_synced t fs

let truncate_before t lsn =
  if lsn < t.base || lsn > end_lsn t then failwith "Wal.truncate_before: bad LSN";
  if lsn > t.base then begin
    let b = image t in
    (* Count the discarded records and verify the boundary by decoding. *)
    let rec skip off dropped =
      if off < lsn - t.base then begin
        let _, off' = Record.decode b off in
        skip off' (dropped + 1)
      end
      else if off = lsn - t.base then dropped
      else failwith "Wal.truncate_before: LSN is not a record boundary"
    in
    let dropped = skip 0 0 in
    let fresh = Buffer.create (max 4096 (Bytes.length b - (lsn - t.base))) in
    Buffer.add_subbytes fresh b (lsn - t.base) (Bytes.length b - (lsn - t.base));
    t.buf <- fresh;
    t.count <- t.count - dropped;
    t.base <- lsn;
    (* Clamp per-table latest-LSN entries that now point below the log:
       [last_lsn_for] must always return a scannable LSN (>= base), and
       clamping to the new base keeps "last_lsn_for < lsn0" a sound
       no-changes test — a clamped entry can only make the quiescence
       fast-path conservatively scan a suffix that contains no records
       for the table, never skip real changes. *)
    Hashtbl.filter_map_inplace
      (fun _ l -> if l < t.base then Some t.base else Some l)
      t.per_table;
    (match t.file with None -> () | Some fs -> rewrite_file t fs);
    Metrics.incr m_truncations
  end

let fold_from t lsn ~init ~f =
  let acc = ref init in
  iter_from t lsn (fun l r -> acc := f !acc l r);
  !acc

let to_list t =
  List.rev (fold_from t t.base ~init:[] ~f:(fun acc l r -> (l, r) :: acc))

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "WALLOG01";
      let base = Bytes.create 8 in
      Bytes.set_int64_le base 0 (Int64.of_int t.base);
      output_bytes oc base;
      output_bytes oc (image t);
      flush oc;
      (* [flush] only drains the userspace buffer; the fsync makes the
         image durable and the metric honest. *)
      Unix.fsync (Unix.descr_of_out_channel oc);
      Metrics.incr m_fsyncs)

let load path =
  let ic = open_in_bin path in
  let b =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if String.length b < 16 || String.sub b 0 8 <> "WALLOG01" then
    failwith "Wal.load: bad log image";
  let base = Int64.to_int (Bytes.get_int64_le (Bytes.of_string b) 8) in
  let b = String.sub b 16 (String.length b - 16) in
  let t = mk () in
  t.base <- base;
  Buffer.add_string t.buf b;
  (* Rebuild the record count and the per-table latest-LSN map by decoding
     the image; this also validates it. *)
  let bb = Buffer.to_bytes t.buf in
  let len = Bytes.length bb in
  let rec go off =
    if off < len then begin
      let r, off' = Record.decode bb off in
      (match Record.table_of r with
      | Some table -> Hashtbl.replace t.per_table table (t.base + off)
      | None -> ());
      t.count <- t.count + 1;
      go off'
    end
  in
  go 0;
  t

let open_file ?group_commit_window path =
  let window = Option.value group_commit_window ~default:default_group_commit_window in
  if window < 1 then invalid_arg "Wal.open_file: group_commit_window < 1";
  (* A leftover temp file is a truncation rewrite that crashed before its
     rename committed: the segment at [path] is still the authoritative
     log, so the temp is discarded, never adopted. *)
  (try Sys.remove (tmp_path path) with Sys_error _ -> ());
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let fs =
    { fd; path; window; pending_commits = 0; unsynced = false; fsync_count = 0;
      durable_lsn = 0 }
  in
  if size < segment_header_size then begin
    (* Nothing durable (a crash before the header landed): start fresh. *)
    Unix.ftruncate fd 0;
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    really_write fd (segment_header 0);
    fs.unsynced <- true;
    if size > 0 then Metrics.incr m_torn_tails;
    mk ~file:fs ()
  end
  else begin
    let img = Bytes.create size in
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    let rec fill pos =
      if pos < size then begin
        let k = Unix.read fd img pos (size - pos) in
        if k = 0 then failwith "Wal.open_file: short read";
        fill (pos + k)
      end
    in
    fill 0;
    if Bytes.sub_string img 0 8 <> segment_magic then begin
      Unix.close fd;
      failwith "Wal.open_file: bad segment magic"
    end;
    let t = mk ~file:fs () in
    t.base <- Int64.to_int (Bytes.get_int64_le img 8);
    (* Decode frames until the first short, corrupt, or undecodable one —
       a torn tail from a crash mid-append — then truncate the file there:
       the valid prefix is exactly the durable log. *)
    let valid_end = ref segment_header_size in
    let torn = ref false in
    let off = ref segment_header_size in
    while (not !torn) && !off + frame_header_size <= size do
      let len = Int32.to_int (Bytes.get_int32_le img !off) in
      let cksum = Int32.to_int (Bytes.get_int32_le img (!off + 4)) land 0xFFFFFFFF in
      if len <= 0 || !off + frame_header_size + len > size then torn := true
      else begin
        let payload = Bytes.sub_string img (!off + frame_header_size) len in
        if fnv1a payload <> cksum then torn := true
        else begin
          match Record.decode (Bytes.of_string payload) 0 with
          | exception Failure _ -> torn := true
          | r, consumed when consumed = len ->
            let at = t.base + Buffer.length t.buf in
            Buffer.add_string t.buf payload;
            t.count <- t.count + 1;
            (match Record.table_of r with
            | Some table -> Hashtbl.replace t.per_table table at
            | None -> ());
            off := !off + frame_header_size + len;
            valid_end := !off
          | _ -> torn := true
        end
      end
    done;
    if !valid_end < size then begin
      Unix.ftruncate fd !valid_end;
      Metrics.incr m_torn_tails
    end;
    ignore (Unix.lseek fd !valid_end Unix.SEEK_SET);
    (* Everything recovered was read back from the file: it is the
       durable horizon until the next append. *)
    fs.durable_lsn <- t.base + Buffer.length t.buf;
    t
  end
