(** Write-ahead log records.

    The log exists for two reasons.  First, ordinary durability: physical
    redo of committed work (see {!Recovery}).  Second, the paper's
    "buffer the changes in the recovery log" *alternative* refresh method
    needs a log to cull committed, table-relevant changes from — we
    implement that method faithfully (including its costs) to compare it
    against base-table annotation. *)

type txn_id = int

type t =
  | Begin of { txn : txn_id }
  | Commit of { txn : txn_id }
  | Abort of { txn : txn_id }
  | Insert of { txn : txn_id; table : string; addr : Snapdiff_storage.Addr.t;
                tuple : Snapdiff_storage.Tuple.t }
  | Delete of { txn : txn_id; table : string; addr : Snapdiff_storage.Addr.t;
                old_tuple : Snapdiff_storage.Tuple.t }
  | Update of { txn : txn_id; table : string; addr : Snapdiff_storage.Addr.t;
                old_tuple : Snapdiff_storage.Tuple.t;
                new_tuple : Snapdiff_storage.Tuple.t }
  | Checkpoint of { active : txn_id list }
      (** legacy sharp checkpoint marker (kept for existing logs/tests) *)
  | Begin_checkpoint of { active : txn_id list }
      (** opens a fuzzy checkpoint: the buffer pool's dirty pages as of this
          LSN will all reach the store before the matching
          [End_checkpoint]; [active] lists transactions in flight *)
  | End_checkpoint of { begin_lsn : int }
      (** closes the fuzzy checkpoint begun at [begin_lsn]; once this record
          is durable, the log below [begin_lsn] is no longer needed for
          restart redo *)

val txn_of : t -> txn_id option
(** [None] for the checkpoint records. *)

val table_of : t -> string option

val pp : Format.formatter -> t -> unit

val encode : Buffer.t -> t -> unit

val decode : bytes -> int -> t * int

val encoded_size : t -> int
(** Exact size {!encode} will produce. *)
