module Buffer_pool = Snapdiff_storage.Buffer_pool
module Metrics = Snapdiff_obs.Metrics
module Trace = Snapdiff_obs.Trace

let m_checkpoints = Metrics.counter Metrics.global "wal.checkpoints"
let m_checkpoint_pages = Metrics.counter Metrics.global "wal.checkpoint_pages"

type stats = {
  begin_lsn : Wal.lsn;
  end_lsn : Wal.lsn;
  pages_flushed : int;
  bytes_written : int;
  pages_snapshotted : int;
}

(* Fuzzy (non-quiescent) checkpoint, ARIES-style:

   1. append Begin_checkpoint (its LSN is the checkpoint's redo floor);
   2. snapshot the pool's dirty-page list as of that instant;
   3. write the snapshotted pages back one at a time, calling [yield]
      between pages so updaters interleave freely;
   4. append End_checkpoint { begin_lsn } and fsync the log.

   Why the floor is sound with concurrent updates: every change logged
   {e before} begin_lsn had dirtied its page by then, so the page is in
   the snapshot and reaches the store during the pass (a later re-dirty
   only makes the flushed image newer, never older).  Changes logged {e at
   or after} begin_lsn are retained in the log — truncation never goes
   above begin_lsn — and {!Recovery.redo} is idempotent, so an image that
   already carries some of them replays cleanly. *)
let run ~wal ~pool ?(active = []) ?yield () =
  Trace.with_span "wal.checkpoint" (fun () ->
      let begin_lsn = Wal.append wal (Record.Begin_checkpoint { active }) in
      let dirty = Buffer_pool.dirty_pages pool in
      let pages_flushed = ref 0 in
      let bytes_written = ref 0 in
      List.iter
        (fun n ->
          let written = Buffer_pool.writeback_page pool n in
          if written > 0 then begin
            incr pages_flushed;
            bytes_written := !bytes_written + written
          end;
          match yield with Some f -> f () | None -> ())
        dirty;
      let end_lsn = Wal.append wal (Record.End_checkpoint { begin_lsn }) in
      Wal.sync wal;
      Metrics.incr m_checkpoints;
      Metrics.add m_checkpoint_pages !pages_flushed;
      {
        begin_lsn;
        end_lsn;
        pages_flushed = !pages_flushed;
        bytes_written = !bytes_written;
        pages_snapshotted = List.length dirty;
      })
