(** The write-ahead log manager.

    Records are appended to a single logical log; an LSN is the byte offset
    of a record in the log image.  The log lives in memory as a growing
    byte buffer (every record is stored encoded, so LSNs and sizes are
    real); it can be persisted to and reloaded from a file for crash tests. *)

type t

type lsn = int

val start_lsn : lsn
(** LSN of the first record (0). *)

val create : unit -> t

val append : t -> Record.t -> lsn
(** Returns the LSN assigned to this record. *)

val end_lsn : t -> lsn
(** One past the last record: the LSN the next append will get. *)

val last_lsn_for : t -> table:string -> lsn option
(** LSN of the latest Insert/Delete/Update record naming [table], or
    [None] if the table never appeared in the log.  Maintained on append
    (and rebuilt by {!load}); unaffected by {!truncate_before}, so
    [last_lsn_for t ~table < Some lsn] remains a valid "no changes to
    [table] since [lsn]" test even after the records themselves were
    discarded.  The chunked refresh catch-up phase uses it to skip the
    log-tail scan entirely when its base table was quiescent. *)

val oldest_retained : t -> lsn
(** Smallest LSN still in the log ({!start_lsn} until the first
    {!truncate_before}).  A reader whose cursor is below this cannot be
    served — the paper: "one could bound the buffering required and
    transmit the entire (restricted) base table if the last refresh of the
    snapshot precedes the earliest retained changes". *)

val truncate_before : t -> lsn -> unit
(** Discard records below the given LSN (which must be a record boundary
    previously returned by {!append}/iteration).  LSNs of retained records
    are unchanged.  Raises [Failure] on a bad or mid-record LSN. *)

val record_count : t -> int

val byte_size : t -> int

val read : t -> lsn -> Record.t * lsn
(** The record at an exact LSN and the next LSN.  Raises [Failure] on a
    bad LSN. *)

val iter_from : t -> lsn -> (lsn -> Record.t -> unit) -> unit
(** All records with LSN >= the given one, in order. *)

val fold_from : t -> lsn -> init:'a -> f:('a -> lsn -> Record.t -> 'a) -> 'a

val to_list : t -> (lsn * Record.t) list

val save : t -> string -> unit
(** Write the log image to a file. *)

val load : string -> t
(** Raises [Failure] on a corrupt image. *)
