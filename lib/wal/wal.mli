(** The write-ahead log manager.

    Records are appended to a single logical log; an LSN is the byte offset
    of a record in the log image.  The log always lives in memory as a
    growing byte buffer (every record is stored encoded, so LSNs and sizes
    are real).  With the [File] backend each append is additionally written
    to a segment file as a checksummed, length-prefixed frame, and Commit
    records are made durable by {e group commit}: up to
    [group_commit_window] commits share one [fsync].  {!open_file} rebuilds
    the in-memory image from the segment, tolerating (and trimming) a torn
    tail left by a crash mid-append. *)

type t

type lsn = int

type backend =
  | Memory  (** process-memory only; durability via {!save}/{!load} *)
  | File of string  (** segment file at this path; durable appends *)

val start_lsn : lsn
(** LSN of the first record (0). *)

val create : ?backend:backend -> ?group_commit_window:int -> unit -> t
(** [create ()] is the in-memory log.  [create ~backend:(File path) ()]
    starts a {e fresh} segment at [path] (truncating any existing file);
    use {!open_file} to recover an existing segment.
    [group_commit_window] (default 8, must be >= 1; ignored by [Memory])
    is the number of Commit records that share one fsync: 1 means every
    commit syncs.  Raises [Invalid_argument] on a window < 1. *)

val open_file : ?group_commit_window:int -> string -> t
(** Open (or create) the segment file at a path and rebuild the log from
    it.  Frames are verified in order (length bounds, FNV-1a checksum,
    exact decode); at the first invalid frame the file is truncated to the
    last valid record — the torn tail a crash mid-append leaves is
    silently trimmed (counted by the [wal.torn_tails] metric) and the
    durable prefix is the recovered log.  Raises [Failure] only if the
    file exists but is not a WAL segment (bad magic). *)

val backend : t -> backend

val group_commit_window : t -> int
(** 1 for [Memory] logs. *)

val sync : t -> unit
(** Force everything appended so far to stable storage (one fsync if
    anything is pending; no-op for [Memory] or an already-synced file).
    Closes out a partial group-commit batch. *)

val close : t -> unit
(** {!sync} then release the file descriptor.  No-op for [Memory].  The
    log remains readable in memory after close; further appends on a
    closed file-backed log raise. *)

val fsyncs : t -> int
(** Real fsyncs issued on this log's segment (0 for [Memory]).  The
    process-wide [wal.fsyncs] metric aggregates across logs and includes
    {!save}. *)

val durable_end_lsn : t -> lsn
(** One past the last byte known to have reached stable storage —
    advanced by every fsync: a group-commit window completing, {!sync},
    {!truncate_before}'s segment rewrite, {!close}.  Group commit means
    {!append} can acknowledge a [Commit] record whose LSN is still at or
    above this horizon; such a commit may vanish in a crash until the
    window fills or the caller forces {!sync}.  A caller needing
    per-commit durability compares the commit's LSN against this (or just
    calls {!sync}).  For [Memory] logs it equals {!end_lsn} trivially —
    there is no segment to lag behind — but a memory log has no crash
    durability at all short of {!save}. *)

val append : t -> Record.t -> lsn
(** Returns the LSN assigned to this record.  On a file-backed log the
    frame is written immediately; it is durable after the enclosing group
    commit's fsync (a [Commit] record completing the window, or {!sync}).
    {b A successful return therefore does not imply durability}: up to
    [group_commit_window - 1] acknowledged commits can be lost in a
    crash.  See {!durable_end_lsn}. *)

val end_lsn : t -> lsn
(** One past the last record: the LSN the next append will get. *)

val last_lsn_for : t -> table:string -> lsn option
(** LSN of the latest Insert/Delete/Update record naming [table], or
    [None] if the table never appeared in the log.  Maintained on append
    (and rebuilt by {!load}/{!open_file}).  {!truncate_before} clamps
    stale entries up to the new {!oldest_retained}, so the returned LSN is
    always scannable ({!iter_from} never raises on it) and
    [last_lsn_for t ~table < Some lsn] remains a sound "no changes to
    [table] since [lsn]" test even after the records themselves were
    discarded: clamping can only force a conservative scan of a suffix
    with no matching records, never skip real changes.  The chunked
    refresh catch-up phase uses it to skip the log-tail scan entirely when
    its base table was quiescent. *)

val oldest_retained : t -> lsn
(** Smallest LSN still in the log ({!start_lsn} until the first
    {!truncate_before}).  A reader whose cursor is below this cannot be
    served — the paper: "one could bound the buffering required and
    transmit the entire (restricted) base table if the last refresh of the
    snapshot precedes the earliest retained changes". *)

val truncate_before : t -> lsn -> unit
(** Discard records below the given LSN (which must be a record boundary
    previously returned by {!append}/iteration).  LSNs of retained records
    are unchanged; per-table latest-LSN entries below the new base are
    clamped to it (see {!last_lsn_for}).  On a file-backed log the segment
    is rewritten {e atomically} — written to a sibling [.tmp] file,
    fsynced, renamed over the old path, directory fsynced — so a crash
    mid-truncation leaves either the complete old segment or the complete
    new one, never a partial overwrite that recovery would mistake for a
    torn tail ({!open_file} discards any leftover [.tmp]).  Raises
    [Failure] on a bad or mid-record LSN. *)

val record_count : t -> int

val byte_size : t -> int

val read : t -> lsn -> Record.t * lsn
(** The record at an exact LSN and the next LSN.  Raises [Failure] on a
    bad LSN. *)

val iter_from : t -> lsn -> (lsn -> Record.t -> unit) -> unit
(** All records with LSN >= the given one, in order. *)

val fold_from : t -> lsn -> init:'a -> f:('a -> lsn -> Record.t -> 'a) -> 'a

val to_list : t -> (lsn * Record.t) list

val save : t -> string -> unit
(** Write the log image to a file (whole-image snapshot format, distinct
    from the segment format) and fsync it. *)

val load : string -> t
(** Load a {!save} image.  Raises [Failure] on a corrupt image. *)
