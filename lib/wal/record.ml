open Snapdiff_storage

type txn_id = int

type t =
  | Begin of { txn : txn_id }
  | Commit of { txn : txn_id }
  | Abort of { txn : txn_id }
  | Insert of { txn : txn_id; table : string; addr : Addr.t; tuple : Tuple.t }
  | Delete of { txn : txn_id; table : string; addr : Addr.t; old_tuple : Tuple.t }
  | Update of { txn : txn_id; table : string; addr : Addr.t;
                old_tuple : Tuple.t; new_tuple : Tuple.t }
  | Checkpoint of { active : txn_id list }
  | Begin_checkpoint of { active : txn_id list }
  | End_checkpoint of { begin_lsn : int }

let txn_of = function
  | Begin { txn } | Commit { txn } | Abort { txn } -> Some txn
  | Insert { txn; _ } | Delete { txn; _ } | Update { txn; _ } -> Some txn
  | Checkpoint _ | Begin_checkpoint _ | End_checkpoint _ -> None

let table_of = function
  | Insert { table; _ } | Delete { table; _ } | Update { table; _ } -> Some table
  | Begin _ | Commit _ | Abort _ | Checkpoint _ | Begin_checkpoint _ | End_checkpoint _ ->
    None

let pp ppf = function
  | Begin { txn } -> Format.fprintf ppf "BEGIN(%d)" txn
  | Commit { txn } -> Format.fprintf ppf "COMMIT(%d)" txn
  | Abort { txn } -> Format.fprintf ppf "ABORT(%d)" txn
  | Insert { txn; table; addr; tuple } ->
    Format.fprintf ppf "INSERT(%d, %s, %a, %a)" txn table Addr.pp addr Tuple.pp tuple
  | Delete { txn; table; addr; old_tuple } ->
    Format.fprintf ppf "DELETE(%d, %s, %a, %a)" txn table Addr.pp addr Tuple.pp old_tuple
  | Update { txn; table; addr; old_tuple; new_tuple } ->
    Format.fprintf ppf "UPDATE(%d, %s, %a, %a -> %a)" txn table Addr.pp addr
      Tuple.pp old_tuple Tuple.pp new_tuple
  | Checkpoint { active } ->
    Format.fprintf ppf "CHECKPOINT(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      active
  | Begin_checkpoint { active } ->
    Format.fprintf ppf "BEGIN_CHECKPOINT(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      active
  | End_checkpoint { begin_lsn } -> Format.fprintf ppf "END_CHECKPOINT(%d)" begin_lsn

let tag = function
  | Begin _ -> 1
  | Commit _ -> 2
  | Abort _ -> 3
  | Insert _ -> 4
  | Delete _ -> 5
  | Update _ -> 6
  | Checkpoint _ -> 7
  | Begin_checkpoint _ -> 8
  | End_checkpoint _ -> 9

let encode buf r =
  Codec.add_u8 buf (tag r);
  match r with
  | Begin { txn } | Commit { txn } | Abort { txn } -> Codec.add_int buf txn
  | Insert { txn; table; addr; tuple } ->
    Codec.add_int buf txn;
    Codec.add_string buf table;
    Codec.add_int buf addr;
    Codec.add_tuple buf tuple
  | Delete { txn; table; addr; old_tuple } ->
    Codec.add_int buf txn;
    Codec.add_string buf table;
    Codec.add_int buf addr;
    Codec.add_tuple buf old_tuple
  | Update { txn; table; addr; old_tuple; new_tuple } ->
    Codec.add_int buf txn;
    Codec.add_string buf table;
    Codec.add_int buf addr;
    Codec.add_tuple buf old_tuple;
    Codec.add_tuple buf new_tuple
  | Checkpoint { active } | Begin_checkpoint { active } ->
    Codec.add_u32 buf (List.length active);
    List.iter (Codec.add_int buf) active
  | End_checkpoint { begin_lsn } -> Codec.add_int buf begin_lsn

let decode b off =
  let t, off = Codec.u8 b off in
  match t with
  | 1 | 2 | 3 ->
    let txn, off = Codec.int b off in
    let r =
      if t = 1 then Begin { txn } else if t = 2 then Commit { txn } else Abort { txn }
    in
    (r, off)
  | 4 | 5 ->
    let txn, off = Codec.int b off in
    let table, off = Codec.string b off in
    let addr, off = Codec.int b off in
    let tuple, off = Codec.tuple b off in
    let r =
      if t = 4 then Insert { txn; table; addr; tuple }
      else Delete { txn; table; addr; old_tuple = tuple }
    in
    (r, off)
  | 6 ->
    let txn, off = Codec.int b off in
    let table, off = Codec.string b off in
    let addr, off = Codec.int b off in
    let old_tuple, off = Codec.tuple b off in
    let new_tuple, off = Codec.tuple b off in
    (Update { txn; table; addr; old_tuple; new_tuple }, off)
  | 7 | 8 ->
    let n, off = Codec.u32 b off in
    let active = ref [] in
    let off = ref off in
    for _ = 1 to n do
      let txn, off' = Codec.int b !off in
      active := txn :: !active;
      off := off'
    done;
    let active = List.rev !active in
    ((if t = 7 then Checkpoint { active } else Begin_checkpoint { active }), !off)
  | 9 ->
    let begin_lsn, off = Codec.int b off in
    (End_checkpoint { begin_lsn }, off)
  | _ -> failwith "Wal.Record.decode: bad tag"

let encoded_size r =
  let buf = Buffer.create 64 in
  encode buf r;
  Buffer.length buf
