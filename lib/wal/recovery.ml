open Snapdiff_storage

let committed_txns log from =
  let set = Hashtbl.create 64 in
  Wal.iter_from log from (fun _ r ->
      match r with
      | Record.Commit { txn } -> Hashtbl.replace set txn ()
      | _ -> ());
  set

(* Physical redo must be idempotent: the starting image may already
   contain the effect of any retained record.  A sharp checkpoint image
   never does, but a {e fuzzy} checkpoint flushes pages while updaters
   run, so a page written late in the pass can carry changes logged after
   the checkpoint's begin LSN (which is where retention is truncated).
   Each operation therefore re-states the address's post-state rather
   than assuming its pre-state: Insert/Update upsert, Delete tolerates an
   already-missing entry. *)
let redo log resolve =
  let from = Wal.oldest_retained log in
  let committed = committed_txns log from in
  let is_committed txn = Hashtbl.mem committed txn in
  Wal.iter_from log from (fun _ r ->
      let apply table f =
        match resolve table with Some heap -> f heap | None -> ()
      in
      let upsert heap addr tuple =
        if Heap.mem heap addr then Heap.update heap addr tuple
        else Heap.insert_at heap addr tuple
      in
      match r with
      | Record.Insert { txn; table; addr; tuple } when is_committed txn ->
        apply table (fun heap -> upsert heap addr tuple)
      | Record.Delete { txn; table; addr; _ } when is_committed txn ->
        apply table (fun heap -> if Heap.mem heap addr then Heap.delete heap addr)
      | Record.Update { txn; table; addr; new_tuple; _ } when is_committed txn ->
        apply table (fun heap -> upsert heap addr new_tuple)
      | Record.Insert _ | Record.Delete _ | Record.Update _
      | Record.Begin _ | Record.Commit _ | Record.Abort _ | Record.Checkpoint _
      | Record.Begin_checkpoint _ | Record.End_checkpoint _ ->
        ())

type net = {
  before : Tuple.t option;
  after : Tuple.t option;
}

type scan_stats = {
  records_scanned : int;
  bytes_scanned : int;
  relevant : int;
}

let net_changes log ~table ~since =
  (* [since] may predate [oldest_retained] once the log has been truncated
     (or exceed [end_lsn] on a stale caller); clamp to the range that is
     actually scannable so iteration succeeds and [bytes_scanned] reports
     the bytes really read, not a negative or inflated figure. *)
  let from = min (max since (Wal.oldest_retained log)) (Wal.end_lsn log) in
  let committed = committed_txns log from in
  let is_committed txn = Hashtbl.mem committed txn in
  let states : (Addr.t, net) Hashtbl.t = Hashtbl.create 256 in
  let records = ref 0 in
  let relevant = ref 0 in
  (* [before] is pinned at first sight of the address; [after] tracks the
     latest committed state. *)
  let step addr old_v new_v =
    incr relevant;
    match Hashtbl.find_opt states addr with
    | None -> Hashtbl.replace states addr { before = old_v; after = new_v }
    | Some st -> Hashtbl.replace states addr { st with after = new_v }
  in
  Wal.iter_from log from (fun _ r ->
      incr records;
      match r with
      | Record.Insert { txn; table = t; addr; tuple } when t = table && is_committed txn ->
        step addr None (Some tuple)
      | Record.Delete { txn; table = t; addr; old_tuple } when t = table && is_committed txn ->
        step addr (Some old_tuple) None
      | Record.Update { txn; table = t; addr; old_tuple; new_tuple }
        when t = table && is_committed txn ->
        step addr (Some old_tuple) (Some new_tuple)
      | _ -> ());
  let out =
    Hashtbl.fold
      (fun addr st acc ->
        let unchanged =
          match (st.before, st.after) with
          | None, None -> true
          | Some b, Some a -> Tuple.equal b a
          | _ -> false
        in
        if unchanged then acc else (addr, st) :: acc)
      states []
  in
  let sorted = List.sort (fun (a, _) (b, _) -> Addr.compare a b) out in
  let stats =
    {
      records_scanned = !records;
      bytes_scanned = Wal.end_lsn log - from;
      relevant = !relevant;
    }
  in
  (sorted, stats)
