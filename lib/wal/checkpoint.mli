(** Asynchronous fuzzy checkpoints.

    A checkpoint bounds restart redo work and enables WAL segment
    truncation without ever stalling updaters: it brackets a
    page-at-a-time flush of the buffer pool's dirty pages between
    [Begin_checkpoint] and [End_checkpoint] records, yielding between
    pages.  Once the [End_checkpoint] is durable, redo never needs log
    records below the checkpoint's begin LSN — that LSN is the
    {e truncation floor} the caller may pass to {!Wal.truncate_before}
    (after lowering it for any live log readers; see
    [Snapdiff_core.Manager.checkpoint]). *)

type stats = {
  begin_lsn : Wal.lsn;  (** LSN of the Begin_checkpoint record: the redo floor *)
  end_lsn : Wal.lsn;  (** LSN of the End_checkpoint record *)
  pages_flushed : int;  (** pages actually written (still dirty when reached) *)
  bytes_written : int;
      (** bytes written back — sub-page dirty-range write-back makes this
          typically much less than [pages_flushed * page_size] *)
  pages_snapshotted : int;  (** dirty pages in the begin-LSN snapshot *)
}

val run :
  wal:Wal.t ->
  pool:Snapdiff_storage.Buffer_pool.t ->
  ?active:Record.txn_id list ->
  ?yield:(unit -> unit) ->
  unit ->
  stats
(** Run one fuzzy checkpoint of [pool] against [wal].  [active] (default
    empty) lists in-flight transactions for the Begin_checkpoint record.
    [yield] is called after each page write-back — the interleave point
    where updaters may freely re-dirty pages (including already-flushed
    ones); the checkpoint remains correct because the log at and above
    [begin_lsn] is retained and redo is idempotent.  The log is fsynced
    after the End_checkpoint record, so the returned [begin_lsn] is a
    durable truncation floor. *)
