(* snapshotdb — command-line front end.

   snapshotdb shell                 interactive SQL shell
   snapshotdb run FILE.sql          execute a SQL script
   snapshotdb fig --id 8|9          regenerate a paper figure
   snapshotdb model --q Q --u U     query the analytical model *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning)
module Database = Snapdiff_sql.Database
module Parser = Snapdiff_sql.Parser
module Figures = Snapdiff_figures.Figures
module Model = Snapdiff_analysis.Model

let print_result r = print_string (Database.render_result r)

let handle_errors f =
  match f () with
  | () -> ()
  | exception Database.Sql_error m -> Printf.printf "error: %s\n%!" m
  | exception Parser.Parse_error { message; _ } -> Printf.printf "parse error: %s\n%!" message
  | exception Snapdiff_sql.Lexer.Lex_error { message; _ } ->
    Printf.printf "lex error: %s\n%!" message

(* ------------------------------------------------------------------ *)
(* shell *)

let banner =
  "snapshotdb - differential snapshot refresh (Lindsay et al., SIGMOD 1986)\n\
   Statements end with ';'.  Try:\n\
  \  CREATE TABLE emp (name STRING NOT NULL, salary INT NOT NULL);\n\
  \  INSERT INTO emp VALUES ('Bruce', 15), ('Laura', 6);\n\
  \  CREATE SNAPSHOT lowpay AS SELECT * FROM emp WHERE salary < 10 REFRESH DIFFERENTIAL;\n\
  \  UPDATE emp SET salary = 7 WHERE name = 'Bruce';\n\
  \  REFRESH SNAPSHOT lowpay;\n\
  \  SELECT * FROM lowpay;\n\
   Type 'quit;' or Ctrl-D to exit.\n"

let shell_cmd verbose =
  setup_logs verbose;
  print_string banner;
  let db = Database.create () in
  let buf = Buffer.create 256 in
  let rec loop () =
    if Buffer.length buf = 0 then print_string "snapdiff> " else print_string "      ... ";
    print_string "";
    flush stdout;
    match In_channel.input_line stdin with
    | None -> print_newline ()
    | Some line ->
      let trimmed = String.trim line in
      if trimmed = "quit;" || trimmed = "quit" || trimmed = "exit;" || trimmed = "exit" then ()
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        let text = Buffer.contents buf in
        if String.contains text ';' then begin
          Buffer.clear buf;
          handle_errors (fun () ->
              List.iter (fun (_, r) -> print_result r) (Database.run_script db text))
        end;
        loop ()
      end
  in
  loop ();
  0

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd verbose echo file =
  setup_logs verbose;
  let text = In_channel.with_open_text file In_channel.input_all in
  let db = Database.create () in
  handle_errors (fun () ->
      List.iter
        (fun (stmt, r) ->
          if echo then Format.printf "-- %a@." Snapdiff_sql.Ast.pp_stmt stmt;
          print_result r)
        (Database.run_script db text));
  0

(* ------------------------------------------------------------------ *)
(* fig *)

let fig_cmd id n =
  (match id with
  | 8 ->
    let sweeps = Figures.figure8 ~n () in
    List.iter (fun s -> print_string (Figures.render_sweep_table s)) sweeps;
    print_string
      (Figures.render_figure_chart ~log_scale:false
         ~title:"Figure 8: tuples sent vs update activity" sweeps)
  | 9 ->
    let sweeps = Figures.figure9 ~n () in
    List.iter (fun s -> print_string (Figures.render_sweep_table s)) sweeps;
    print_string
      (Figures.render_figure_chart ~log_scale:true
         ~title:"Figure 9: restrictive snapshots (log scale)" sweeps)
  | _ -> Printf.printf "unknown figure %d (the paper's evaluation has figures 8 and 9)\n" id);
  0

(* ------------------------------------------------------------------ *)
(* model *)

let model_cmd n q u =
  Printf.printf "n = %d, selectivity q = %.3f, update activity u = %.3f\n" n q u;
  Printf.printf "  full:          %10.1f messages (%6.3f%% of table)\n"
    (Model.full_messages ~n ~q)
    (Model.pct_of_table ~n (Model.full_messages ~n ~q));
  let d = Model.differential_messages ~n ~q ~u () in
  Printf.printf "  differential:  %10.1f messages (%6.3f%% of table)\n" d
    (Model.pct_of_table ~n d);
  let i = Model.ideal_messages ~n ~q ~u in
  Printf.printf "  ideal:         %10.1f messages (%6.3f%% of table)\n" i
    (Model.pct_of_table ~n i);
  Printf.printf "  superfluous fraction of differential: %.3f\n"
    (Model.superfluous_fraction ~q ~u);
  0

(* ------------------------------------------------------------------ *)
(* faults *)

let faults_cmd n rounds =
  let module Text_table = Snapdiff_util.Text_table in
  Printf.printf
    "Refresh over fault-injecting links, n = %d, %d refresh rounds per plan\n" n rounds;
  let t =
    Text_table.create
      [ ("fault plan", Text_table.Left); ("attempts", Text_table.Right);
        ("aborted streams", Text_table.Right); ("escalations", Text_table.Right);
        ("failed refreshes", Text_table.Right); ("wire msgs", Text_table.Right);
        ("converged", Text_table.Right) ]
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [ r.Figures.fault_name; string_of_int r.Figures.attempts_total;
          string_of_int r.Figures.aborted_streams;
          string_of_int r.Figures.escalations;
          string_of_int r.Figures.refreshes_failed;
          string_of_int r.Figures.wire_messages;
          (if r.Figures.converged then "yes" else "NO") ])
    (Figures.faults_ablation ~n ~rounds ());
  Text_table.print t;
  print_endline
    "A failed refresh is atomic: the snapshot keeps its previous image and\n\
     SnapTime, so one refresh on a healed line covers the whole gap.";
  0

(* ------------------------------------------------------------------ *)
(* cmdliner wiring *)

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log refresh events to stderr.")

let shell_t = Term.(const shell_cmd $ verbose_t)

let run_t =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"SQL script to execute.")
  in
  let echo =
    Arg.(value & flag & info [ "echo" ] ~doc:"Echo each statement before its result.")
  in
  Term.(const run_cmd $ verbose_t $ echo $ file)

let fig_t =
  let id =
    Arg.(required & opt (some int) None & info [ "id" ] ~docv:"N" ~doc:"Figure number (8 or 9).")
  in
  let n =
    Arg.(value & opt int 20000 & info [ "n" ] ~docv:"ROWS" ~doc:"Base table size.")
  in
  Term.(const fig_cmd $ id $ n)

let model_t =
  let n = Arg.(value & opt int 20000 & info [ "n" ] ~doc:"Base table size.") in
  let q =
    Arg.(required & opt (some float) None & info [ "q" ] ~doc:"Snapshot selectivity in [0,1].")
  in
  let u =
    Arg.(required & opt (some float) None & info [ "u" ] ~doc:"Update activity in [0,1].")
  in
  Term.(const model_cmd $ n $ q $ u)

let faults_t =
  let n =
    Arg.(value & opt int 10000 & info [ "n" ] ~docv:"ROWS" ~doc:"Base table size.")
  in
  let rounds =
    Arg.(value & opt int 6 & info [ "rounds" ] ~docv:"K" ~doc:"Refresh rounds per fault plan.")
  in
  Term.(const faults_cmd $ n $ rounds)

let cmds =
  [
    Cmd.v (Cmd.info "shell" ~doc:"Interactive SQL shell with snapshot support.") shell_t;
    Cmd.v (Cmd.info "run" ~doc:"Execute a SQL script file.") run_t;
    Cmd.v (Cmd.info "fig" ~doc:"Regenerate a figure from the paper's evaluation.") fig_t;
    Cmd.v (Cmd.info "model" ~doc:"Evaluate the analytical message-cost model.") model_t;
    Cmd.v
      (Cmd.info "faults"
         ~doc:"Drive refreshes over fault-injecting links and report the retry tax.")
      faults_t;
  ]

let () =
  let info =
    Cmd.info "snapshotdb"
      ~doc:"A snapshot differential refresh engine (Lindsay et al., SIGMOD 1986)"
  in
  exit (Cmd.eval' (Cmd.group info cmds))
