(* snapshotdb — command-line front end.

   snapshotdb shell                 interactive SQL shell
   snapshotdb run FILE.sql          execute a SQL script
   snapshotdb fig --id 8|9          regenerate a paper figure
   snapshotdb model --q Q --u U     query the analytical model
   snapshotdb stats                 run a workload, dump engine metrics *)

open Cmdliner
module Metrics = Snapdiff_obs.Metrics
module Trace = Snapdiff_obs.Trace

let setup_logs verbose trace =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning);
  match trace with
  | None -> ()
  | Some path ->
    Trace.enable (Trace.Jsonl path);
    at_exit (fun () ->
        Trace.flush ();
        Trace.disable ())
module Database = Snapdiff_sql.Database
module Parser = Snapdiff_sql.Parser
module Figures = Snapdiff_figures.Figures
module Model = Snapdiff_analysis.Model

let print_result r = print_string (Database.render_result r)

(* Runs [f], mapping the SQL front end's exceptions to a printed message
   and exit code 2 (usage/semantic error).  The shell ignores the code and
   keeps its read-eval loop; script mode propagates it so CI can assert
   that e.g. an AS OF miss is a clean error, not a success or a crash. *)
let handle_errors f =
  match f () with
  | () -> 0
  | exception Database.Sql_error m ->
    Printf.printf "error: %s\n%!" m;
    2
  | exception Parser.Parse_error { message; _ } ->
    Printf.printf "parse error: %s\n%!" message;
    2
  | exception Snapdiff_sql.Lexer.Lex_error { message; _ } ->
    Printf.printf "lex error: %s\n%!" message;
    2

(* ------------------------------------------------------------------ *)
(* shell *)

let banner =
  "snapshotdb - differential snapshot refresh (Lindsay et al., SIGMOD 1986)\n\
   Statements end with ';'.  Try:\n\
  \  CREATE TABLE emp (name STRING NOT NULL, salary INT NOT NULL);\n\
  \  INSERT INTO emp VALUES ('Bruce', 15), ('Laura', 6);\n\
  \  CREATE SNAPSHOT lowpay AS SELECT * FROM emp WHERE salary < 10 REFRESH DIFFERENTIAL;\n\
  \  UPDATE emp SET salary = 7 WHERE name = 'Bruce';\n\
  \  REFRESH SNAPSHOT lowpay;\n\
  \  SELECT * FROM lowpay;\n\
   Type 'quit;' or Ctrl-D to exit.\n"

let shell_cmd verbose trace =
  setup_logs verbose trace;
  print_string banner;
  let db = Database.create () in
  let buf = Buffer.create 256 in
  let rec loop () =
    if Buffer.length buf = 0 then print_string "snapdiff> " else print_string "      ... ";
    print_string "";
    flush stdout;
    match In_channel.input_line stdin with
    | None -> print_newline ()
    | Some line ->
      let trimmed = String.trim line in
      if trimmed = "quit;" || trimmed = "quit" || trimmed = "exit;" || trimmed = "exit" then ()
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        let text = Buffer.contents buf in
        if String.contains text ';' then begin
          Buffer.clear buf;
          ignore
            (handle_errors (fun () ->
                 List.iter (fun (_, r) -> print_result r) (Database.run_script db text))
              : int)
        end;
        loop ()
      end
  in
  loop ();
  0

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd verbose trace echo file =
  setup_logs verbose trace;
  let text = In_channel.with_open_text file In_channel.input_all in
  let db = Database.create () in
  handle_errors (fun () ->
      List.iter
        (fun (stmt, r) ->
          if echo then Format.printf "-- %a@." Snapdiff_sql.Ast.pp_stmt stmt;
          print_result r)
        (Database.run_script db text))

(* ------------------------------------------------------------------ *)
(* fig *)

let fig_cmd id n =
  (match id with
  | 8 ->
    let sweeps = Figures.figure8 ~n () in
    List.iter (fun s -> print_string (Figures.render_sweep_table s)) sweeps;
    print_string
      (Figures.render_figure_chart ~log_scale:false
         ~title:"Figure 8: tuples sent vs update activity" sweeps)
  | 9 ->
    let sweeps = Figures.figure9 ~n () in
    List.iter (fun s -> print_string (Figures.render_sweep_table s)) sweeps;
    print_string
      (Figures.render_figure_chart ~log_scale:true
         ~title:"Figure 9: restrictive snapshots (log scale)" sweeps)
  | _ -> Printf.printf "unknown figure %d (the paper's evaluation has figures 8 and 9)\n" id);
  0

(* ------------------------------------------------------------------ *)
(* model *)

let model_cmd n q u =
  Printf.printf "n = %d, selectivity q = %.3f, update activity u = %.3f\n" n q u;
  Printf.printf "  full:          %10.1f messages (%6.3f%% of table)\n"
    (Model.full_messages ~n ~q)
    (Model.pct_of_table ~n (Model.full_messages ~n ~q));
  let d = Model.differential_messages ~n ~q ~u () in
  Printf.printf "  differential:  %10.1f messages (%6.3f%% of table)\n" d
    (Model.pct_of_table ~n d);
  let i = Model.ideal_messages ~n ~q ~u in
  Printf.printf "  ideal:         %10.1f messages (%6.3f%% of table)\n" i
    (Model.pct_of_table ~n i);
  Printf.printf "  superfluous fraction of differential: %.3f\n"
    (Model.superfluous_fraction ~q ~u);
  0

(* ------------------------------------------------------------------ *)
(* faults *)

let faults_cmd n rounds =
  let module Text_table = Snapdiff_util.Text_table in
  Printf.printf
    "Refresh over fault-injecting links, n = %d, %d refresh rounds per plan\n" n rounds;
  let t =
    Text_table.create
      [ ("fault plan", Text_table.Left); ("attempts", Text_table.Right);
        ("aborted streams", Text_table.Right); ("escalations", Text_table.Right);
        ("failed refreshes", Text_table.Right); ("wire msgs", Text_table.Right);
        ("converged", Text_table.Right) ]
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [ r.Figures.fault_name; string_of_int r.Figures.attempts_total;
          string_of_int r.Figures.aborted_streams;
          string_of_int r.Figures.escalations;
          string_of_int r.Figures.refreshes_failed;
          string_of_int r.Figures.wire_messages;
          (if r.Figures.converged then "yes" else "NO") ])
    (Figures.faults_ablation ~n ~rounds ());
  Text_table.print t;
  print_endline
    "A failed refresh is atomic: the snapshot keeps its previous image and\n\
     SnapTime, so one refresh on a healed line covers the whole gap.";
  0

(* ------------------------------------------------------------------ *)
(* stats *)

(* A compact workload that exercises every instrumented layer — WAL-logged
   mutations, pool-backed pages, refresh streams over a clean and a lossy
   link, and a lock scuffle — then dumps the process-global metrics
   registry. *)
let stats_cmd verbose trace json n rounds u =
  setup_logs verbose trace;
  let module Workload = Snapdiff_workload.Workload in
  let module Manager = Snapdiff_core.Manager in
  let module Clock = Snapdiff_txn.Clock in
  let module Lock = Snapdiff_txn.Lock in
  let module Wal = Snapdiff_wal.Wal in
  let module Link = Snapdiff_net.Link in
  let rng = Snapdiff_util.Rng.create 0xCAFE in
  let clock = Clock.create () in
  let wal = Wal.create () in
  let base = Workload.make_base ~wal ~clock () in
  Workload.populate base ~rng ~n;
  let m = Manager.create ~batch_size:16 () in
  Manager.register_base m base;
  ignore
    (Manager.create_snapshot m ~name:"clean" ~base:(Snapdiff_core.Base_table.name base)
       ~restrict:(Workload.restrict_fraction 0.3) ~method_:Manager.Differential ()
      : Manager.refresh_report);
  let lossy = Link.create ~name:"lossy" () in
  ignore
    (Manager.create_snapshot m ~name:"lossy" ~base:(Snapdiff_core.Base_table.name base)
       ~restrict:(Workload.restrict_fraction 0.1) ~method_:Manager.Differential
       ~link:lossy ()
      : Manager.refresh_report);
  Link.inject_faults lossy ~drop_prob:0.05 ~corrupt_prob:0.02 ~seed:7 ();
  for _ = 1 to rounds do
    ignore (Workload.update_fraction base ~rng ~u ~mix:Workload.churn : int);
    ignore (Manager.refresh m "clean" : Manager.refresh_report);
    (try ignore (Manager.refresh m "lossy" : Manager.refresh_report)
     with Manager.Refresh_failed _ -> ())
  done;
  (* A little lock traffic so the lock.* metrics are live too: a reader
     holds the table while a writer queues, a second reader slips in, and
     a cross-request closes a would-be cycle. *)
  let locks = Lock.create () in
  let r0 = Lock.Table "stats_a" and r1 = Lock.Table "stats_b" in
  ignore (Lock.acquire locks 1 r0 Lock.S);
  ignore (Lock.acquire locks 2 r1 Lock.S);
  ignore (Lock.acquire locks 1 r1 Lock.X);  (* queues behind 2 *)
  ignore (Lock.acquire locks 2 r0 Lock.X);  (* would close the cycle: refused *)
  ignore (Lock.release_all locks 2 : Lock.txn_id list);
  ignore (Lock.release_all locks 1 : Lock.txn_id list);
  if json then print_endline (Metrics.dump_json Metrics.global)
  else Metrics.dump Format.std_formatter Metrics.global;
  0

(* ------------------------------------------------------------------ *)
(* refresh *)

(* A canned multi-snapshot workload driven through the group-refresh
   path: one base table carrying several differential snapshots (plus a
   full-refresh one, which routes solo), mutated each round, then
   refreshed with [Manager.refresh_all] so siblings share one scan.
   [--chunk-entries N] turns on the chunked concurrent protocol: the
   scan runs under a table intention lock as lock-coupled page chunks
   of roughly N entries, with a WAL-tail catch-up phase at the end. *)
let refresh_cmd verbose trace json all names n rounds u chunk_entries domains
    version_strategy version_retain wal_file =
  setup_logs verbose trace;
  let module Workload = Snapdiff_workload.Workload in
  let module Manager = Snapdiff_core.Manager in
  let module Wal = Snapdiff_wal.Wal in
  let module Text_table = Snapdiff_util.Text_table in
  let module VS = Snapdiff_mvcc.Version_store in
  let rng = Snapdiff_util.Rng.create 0xBEEF in
  let clock = Snapdiff_txn.Clock.create () in
  (* WAL-backed so the chunked protocol (which replays the WAL tail to
     catch up) is eligible when --chunk-entries is given.  With
     --wal-file the log is a real group-committed segment file. *)
  let wal =
    match wal_file with
    | None -> Wal.create ()
    | Some path -> Wal.create ~backend:(Wal.File path) ~group_commit_window:8 ()
  in
  let base = Workload.make_base ~wal ~clock () in
  Workload.populate base ~rng ~n;
  let m = match chunk_entries with
    | Some c -> Manager.create ~chunk_entries:c ~domains ()
    | None -> Manager.create ~domains ()
  in
  Manager.register_base m base;
  let version_strategy =
    Option.map
      (fun name ->
        match VS.strategy_of_string name with
        | Some s -> s
        | None ->
          Printf.eprintf
            "snapshotdb: unknown version strategy %S (expected naive, \
             copy-on-update, cou, or zigzag)\n"
            name;
          exit 2)
      version_strategy
  in
  let mk name q method_ =
    ignore
      (Manager.create_snapshot m ~name ~base:(Snapdiff_core.Base_table.name base)
         ~restrict:(Workload.restrict_fraction q) ~method_ ?version_strategy
         ~version_retain ()
        : Manager.refresh_report)
  in
  mk "d10" 0.10 Manager.Differential;
  mk "d25" 0.25 Manager.Differential;
  mk "d50" 0.50 Manager.Differential;
  mk "full25" 0.25 Manager.Full;
  for _ = 2 to rounds do
    ignore (Workload.update_fraction base ~rng ~u ~mix:Workload.churn : int);
    ignore (Manager.refresh_all m : (string * (Manager.refresh_report, exn) result) list)
  done;
  ignore (Workload.update_fraction base ~rng ~u ~mix:Workload.churn : int);
  let only = if all || names = [] then None else Some names in
  let results = Manager.refresh_all ?only m in
  if json then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i (name, res) ->
        if i > 0 then Buffer.add_string buf ",\n";
        match res with
        | Ok r ->
          Printf.bprintf buf
            "  {\"snapshot\": \"%s\", \"ok\": true, \"method\": \"%s\", \
             \"group_size\": %d, \"pages_decoded\": %d, \"data_messages\": %d, \
             \"link_bytes\": %d, \"attempts\": %d, \"chunks\": %d, \
             \"catchup_records\": %d"
            name
            (Manager.method_name r.Manager.method_used)
            r.Manager.group_size r.Manager.pages_decoded r.Manager.data_messages
            r.Manager.link_bytes r.Manager.attempts r.Manager.chunks
            r.Manager.catchup_records;
          if version_retain > 1 || version_strategy <> None then begin
            Printf.bprintf buf ", \"version_strategy\": \"%s\", \"versions\": ["
              (VS.strategy_name (Manager.snapshot_version_strategy m name));
            List.iteri
              (fun i vi ->
                if i > 0 then Buffer.add_string buf ", ";
                Printf.bprintf buf
                  "{\"epoch\": %d, \"snaptime\": %d, \"pins\": %d, \"frozen\": %b}"
                  vi.VS.vi_epoch vi.VS.vi_snaptime vi.VS.vi_pins vi.VS.vi_frozen)
              (Manager.snapshot_versions m name);
            Buffer.add_string buf "]"
          end;
          Buffer.add_string buf "}"
        | Error e ->
          Printf.bprintf buf "  {\"snapshot\": \"%s\", \"ok\": false, \"error\": \"%s\"}"
            name (String.escaped (Printexc.to_string e)))
      results;
    Buffer.add_string buf "\n]\n";
    print_string (Buffer.contents buf)
  end
  else begin
    Printf.printf
      "refresh_all over %d snapshots (base n = %d, u = %g per round, %d rounds)\n"
      (List.length results) n u rounds;
    let t =
      Text_table.create
        [ ("snapshot", Text_table.Left); ("method", Text_table.Left);
          ("group", Text_table.Right); ("pages decoded", Text_table.Right);
          ("data msgs", Text_table.Right); ("bytes", Text_table.Right);
          ("attempts", Text_table.Right); ("chunks", Text_table.Right);
          ("catch-up", Text_table.Right); ("result", Text_table.Left) ]
    in
    List.iter
      (fun (name, res) ->
        match res with
        | Ok r ->
          Text_table.add_row t
            [ name; Manager.method_name r.Manager.method_used;
              string_of_int r.Manager.group_size;
              string_of_int r.Manager.pages_decoded;
              string_of_int r.Manager.data_messages;
              string_of_int r.Manager.link_bytes;
              string_of_int r.Manager.attempts;
              string_of_int r.Manager.chunks;
              string_of_int r.Manager.catchup_records; "ok" ]
        | Error e ->
          Text_table.add_row t
            [ name; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; Printexc.to_string e ])
      results;
    Text_table.print t;
    if version_retain > 1 || version_strategy <> None then begin
      let vt =
        Text_table.create
          [ ("snapshot", Text_table.Left); ("strategy", Text_table.Left);
            ("retained epochs (epoch@snaptime)", Text_table.Left) ]
      in
      List.iter
        (fun (name, res) ->
          match res with
          | Error _ -> ()
          | Ok _ ->
            Text_table.add_row vt
              [ name;
                VS.strategy_name (Manager.snapshot_version_strategy m name);
                String.concat ", "
                  (List.map
                     (fun vi ->
                       Printf.sprintf "%d@%d%s" vi.VS.vi_epoch vi.VS.vi_snaptime
                         (if vi.VS.vi_frozen then "" else "*"))
                     (Manager.snapshot_versions m name)) ])
        results;
      print_newline ();
      print_endline "Retained MVCC versions (newest first; * marks the live head):";
      Text_table.print vt
    end;
    print_endline
      "Differential siblings of one base share a single scan (the 'group'\n\
       column); a page is decoded once per group scan, not once per snapshot.\n\
       With --chunk-entries, 'chunks' is the lock-coupled page chunks the scan\n\
       ran as and 'catch-up' the WAL-tail records replayed under the final\n\
       short table-S lock (0/0 = the monolithic whole-scan lock ran)."
  end;
  (* --wal-file: prove the segment is a faithful durable image of the log
     we just wrote — sync, reopen from disk, compare record for record. *)
  match wal_file with
  | None -> 0
  | Some path ->
    Wal.sync wal;
    let reopened = Wal.open_file path in
    let ok = Wal.to_list reopened = Wal.to_list wal in
    Wal.close reopened;
    let out = if json then stderr else stdout in
    Printf.fprintf out "wal file round-trip: %s (%d records, %d log bytes, %d fsyncs)\n"
      (if ok then "ok" else "MISMATCH") (Wal.record_count wal) (Wal.byte_size wal)
      (Wal.fsyncs wal);
    if ok then 0 else 3

(* ------------------------------------------------------------------ *)
(* fleet *)

(* A canned snapshot fleet: one WAL-backed base per tenant (heavy-tailed
   sizes), a few snapshots over each, all registered with the scheduler
   under log-uniform staleness SLOs, then driven by bursty
   Markov-modulated Poisson updaters for a stretch of virtual time. *)
let fleet_cmd verbose trace json tenants snaps_per ticks seed =
  setup_logs verbose trace;
  let module Workload = Snapdiff_workload.Workload in
  let module Manager = Snapdiff_core.Manager in
  let module Fleet = Snapdiff_fleet.Fleet in
  let module Rng = Snapdiff_util.Rng in
  let module Text_table = Snapdiff_util.Text_table in
  let rng = Rng.create seed in
  let dt = Fleet.default_config.Fleet.lookahead_us in
  let dt_s = dt /. 1e6 in
  let m = Manager.create () in
  let fleet = Fleet.create m in
  let tenant_pop = Workload.make_tenants ~rng ~tenants () in
  Array.iter
    (fun tn ->
      let base_name = Printf.sprintf "tenant%d" tn.Workload.tenant_id in
      let base =
        Workload.make_base ~wal:(Snapdiff_wal.Wal.create ()) ~name:base_name
          ~clock:(Snapdiff_txn.Clock.create ()) ()
      in
      Workload.populate base ~rng ~n:tn.Workload.tenant_size;
      Manager.register_base m base;
      for i = 0 to snaps_per - 1 do
        let name = Printf.sprintf "%s_s%d" base_name i in
        ignore
          (Manager.create_snapshot m ~name ~base:base_name
             ~restrict:(Workload.restrict_fraction (0.1 +. Rng.float rng 0.8)) ()
            : Manager.refresh_report);
        (* Log-uniform SLOs over one decade: 2..20 ticks of budget. *)
        let slo_ticks = 2.0 *. Float.pow 10.0 (Rng.float rng 1.0) in
        Fleet.register fleet ~name ~slo_us:(slo_ticks *. dt)
      done)
    tenant_pop;
  for i = 1 to ticks do
    Array.iter
      (fun tn ->
        let base = Manager.base m (Printf.sprintf "tenant%d" tn.Workload.tenant_id) in
        let ops = Workload.arrivals rng tn ~dt_s in
        if ops > 0 && Snapdiff_core.Base_table.count base > 0 then
          ignore
            (Workload.mutate_zipf base ~rng ~ops ~theta:tn.Workload.tenant_theta
               ~mix:Workload.churn
              : int))
      tenant_pop;
    ignore (Fleet.tick fleet ~now_us:(float_of_int i *. dt) : Fleet.tick_report)
  done;
  let st = Fleet.stats fleet in
  if json then
    Printf.printf
      "{\"tenants\": %d, \"snapshots\": %d, \"ticks\": %d, \"refreshes\": %d, \
       \"slo_misses\": %d, \"miss_rate\": %.6f, \"deferred\": %d, \"pulled_in\": %d, \
       \"shed_full\": %d, \"grouped\": %d, \"failures\": %d, \"max_queue_depth\": %d, \
       \"full\": %d, \"differential\": %d, \"log_based\": %d}\n"
      tenants st.Fleet.st_registered st.Fleet.st_ticks st.Fleet.st_refreshes
      st.Fleet.st_slo_misses (Fleet.miss_rate st) st.Fleet.st_deferred
      st.Fleet.st_pulled_in st.Fleet.st_shed_full st.Fleet.st_grouped
      st.Fleet.st_failures st.Fleet.st_max_queue_depth st.Fleet.st_full
      st.Fleet.st_differential st.Fleet.st_log_based
  else begin
    Printf.printf
      "fleet: %d snapshots over %d tenant bases, %d ticks of %.0f ms virtual time\n"
      st.Fleet.st_registered tenants ticks (dt /. 1000.0);
    let t = Text_table.create [ ("stat", Text_table.Left); ("value", Text_table.Right) ] in
    List.iter
      (fun (k, v) -> Text_table.add_row t [ k; v ])
      [ ("refreshes committed", string_of_int st.Fleet.st_refreshes);
        ("SLO misses", string_of_int st.Fleet.st_slo_misses);
        ("miss rate", Printf.sprintf "%.4f" (Fleet.miss_rate st));
        ("deferred (backpressure)", string_of_int st.Fleet.st_deferred);
        ("pulled into group scans", string_of_int st.Fleet.st_pulled_in);
        ("shed to full", string_of_int st.Fleet.st_shed_full);
        ("served by shared scans", string_of_int st.Fleet.st_grouped);
        ("failures", string_of_int st.Fleet.st_failures);
        ("max queue depth", string_of_int st.Fleet.st_max_queue_depth);
        ("method: full", string_of_int st.Fleet.st_full);
        ("method: differential", string_of_int st.Fleet.st_differential);
        ("method: log-based", string_of_int st.Fleet.st_log_based) ];
    Text_table.print t;
    print_endline
      "Each snapshot's refresh must land within its staleness SLO of the\n\
       previous one; the scheduler picks each dispatch's method from the\n\
       cost model and coalesces due siblings into shared scans."
  end;
  if st.Fleet.st_failures > 0 then 3 else 0

(* ------------------------------------------------------------------ *)
(* vacuum *)

(* Builds a small SQL workload whose snapshot retains several refresh
   epochs, proves every retained epoch is readable through SQL time
   travel (SELECT ... AS OF, compared byte-for-byte against the MVCC
   read-transaction oracle), then runs [Manager.vacuum]: expired
   versions are reclaimed and the shared WAL is truncated to the lease
   horizon in one step.  The oracle check runs again afterwards — the
   epochs vacuum kept must still read back identically.  Exit 3 if any
   AS OF result diverges from the oracle. *)
let vacuum_cmd verbose trace json n rounds retain older_than dry_run =
  setup_logs verbose trace;
  let module Manager = Snapdiff_core.Manager in
  let module Snapshot_table = Snapdiff_core.Snapshot_table in
  let module VS = Snapdiff_mvcc.Version_store in
  let module Lease = Snapdiff_lifecycle.Lease in
  let module Clock = Snapdiff_txn.Clock in
  let module Text_table = Snapdiff_util.Text_table in
  let db = Database.create () in
  let m = Database.manager db in
  let exec sql = ignore (Database.run db sql : Database.result) in
  exec "CREATE TABLE emp (id INT NOT NULL, salary INT NOT NULL)";
  let buf = Buffer.create (n * 12) in
  Buffer.add_string buf "INSERT INTO emp VALUES ";
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_string buf ", ";
    Printf.bprintf buf "(%d, %d)" i (i mod 97)
  done;
  exec (Buffer.contents buf);
  exec
    (Printf.sprintf
       "CREATE SNAPSHOT lowpay AS SELECT * FROM emp WHERE salary < 40 REFRESH \
        DIFFERENTIAL RETAIN %d"
       retain);
  for r = 1 to rounds do
    (* Each round nudges a different prefix of the table across the
       restriction boundary, then publishes a new epoch. *)
    exec (Printf.sprintf "UPDATE emp SET salary = salary + 3 WHERE id < %d" (r * n / (rounds + 1)));
    exec "REFRESH SNAPSHOT lowpay"
  done;
  (* The oracle: a pinned MVCC read transaction on the same epoch must
     yield exactly the tuples SQL time travel returns. *)
  let oracle_tuples epoch =
    let txn = Manager.read_txn_exn ~epoch m "lowpay" in
    Fun.protect
      ~finally:(fun () -> Snapshot_table.release_txn txn)
      (fun () ->
        List.rev (Snapshot_table.txn_fold txn ~init:[] ~f:(fun acc _ tup -> tup :: acc)))
  in
  let check_epochs () =
    List.fold_left
      (fun (ok, checked) vi ->
        let epoch = vi.VS.vi_epoch in
        let rows q =
          match Database.run db q with
          | Database.Rows (schema, tuples) -> (schema, tuples)
          | _ -> failwith "AS OF did not return rows"
        in
        let schema, by_epoch =
          rows (Printf.sprintf "SELECT * FROM lowpay AS OF EPOCH %d" epoch)
        in
        let _, by_time =
          rows (Printf.sprintf "SELECT * FROM lowpay AS OF TIMESTAMP %d" vi.VS.vi_snaptime)
        in
        let render ts = Database.render_result (Database.Rows (schema, ts)) in
        let want = render (oracle_tuples epoch) in
        let good = render by_epoch = want && render by_time = want in
        if not good then
          Printf.eprintf
            "snapshotdb: AS OF EPOCH %d diverges from the read_txn oracle\n%!" epoch;
        (ok && good, checked + 1))
      (true, 0)
      (Manager.snapshot_versions m "lowpay")
  in
  let pre_ok, pre_checked = check_epochs () in
  let older_than = Option.map (fun age -> Clock.now (Database.clock db) - age) older_than in
  let report = Manager.vacuum ?older_than ~dry_run m in
  let post_ok, post_checked = check_epochs () in
  let checks = pre_checked + post_checked in
  let all_ok = pre_ok && post_ok in
  if json then begin
    let b = Buffer.create 512 in
    Printf.bprintf b "{\"dry_run\": %b, \"snapshots\": [" report.Manager.vac_dry_run;
    List.iteri
      (fun i sv ->
        if i > 0 then Buffer.add_string b ", ";
        Printf.bprintf b
          "{\"snapshot\": \"%s\", \"examined\": %d, \"reclaimed\": %d, \"zombied\": %d, \
           \"kept\": %d, \"bytes\": %d}"
          sv.Manager.sv_snapshot sv.Manager.sv_examined sv.Manager.sv_reclaimed
          sv.Manager.sv_zombied sv.Manager.sv_kept sv.Manager.sv_bytes)
      report.Manager.vac_snapshots;
    Buffer.add_string b "], \"wals\": [";
    List.iteri
      (fun i wv ->
        if i > 0 then Buffer.add_string b ", ";
        Printf.bprintf b
          "{\"bases\": [%s], \"truncated_to\": %d, \"log_bytes_reclaimed\": %d, \
           \"gated\": [%s]}"
          (String.concat ", " (List.map (Printf.sprintf "\"%s\"") wv.Manager.wv_bases))
          wv.Manager.wv_truncated_to wv.Manager.wv_log_bytes_reclaimed
          (String.concat ", "
             (List.map
                (fun g -> Printf.sprintf "\"%s\"" (Lease.gating_to_string g))
                wv.Manager.wv_gated)))
      report.Manager.vac_wals;
    Printf.bprintf b "], \"as_of_checks\": %d, \"as_of_ok\": %b}\n" checks all_ok;
    print_string (Buffer.contents b)
  end
  else begin
    Printf.printf "vacuum%s: n = %d, %d refresh rounds, RETAIN %d%s\n"
      (if dry_run then " (dry run)" else "")
      n rounds retain
      (match older_than with
      | Some ts -> Printf.sprintf ", older-than SnapTime %d" ts
      | None -> "");
    let t =
      Text_table.create
        [ ("snapshot", Text_table.Left); ("examined", Text_table.Right);
          ("reclaimed", Text_table.Right); ("zombied", Text_table.Right);
          ("kept (leased)", Text_table.Right); ("bytes", Text_table.Right) ]
    in
    List.iter
      (fun sv ->
        Text_table.add_row t
          [ sv.Manager.sv_snapshot; string_of_int sv.Manager.sv_examined;
            string_of_int sv.Manager.sv_reclaimed; string_of_int sv.Manager.sv_zombied;
            string_of_int sv.Manager.sv_kept; string_of_int sv.Manager.sv_bytes ])
      report.Manager.vac_snapshots;
    Text_table.print t;
    List.iter
      (fun wv ->
        Printf.printf "wal [%s]: truncated to LSN %d, %d log bytes reclaimed%s\n"
          (String.concat ", " wv.Manager.wv_bases)
          wv.Manager.wv_truncated_to wv.Manager.wv_log_bytes_reclaimed
          (match wv.Manager.wv_gated with
          | [] -> ""
          | gs ->
            Printf.sprintf ", gated by %s"
              (String.concat ", " (List.map Lease.gating_to_string gs))))
      report.Manager.vac_wals;
    Printf.printf "as-of oracle: %d epoch reads %s\n" checks
      (if all_ok then "byte-identical to read_txn" else "DIVERGED")
  end;
  if all_ok then 0 else 3

(* ------------------------------------------------------------------ *)
(* cmdliner wiring *)

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log refresh events to stderr.")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a JSON-lines trace of spans and events to $(docv).")

let shell_t = Term.(const shell_cmd $ verbose_t $ trace_t)

let run_t =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"SQL script to execute.")
  in
  let echo =
    Arg.(value & flag & info [ "echo" ] ~doc:"Echo each statement before its result.")
  in
  Term.(const run_cmd $ verbose_t $ trace_t $ echo $ file)

let stats_t =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object instead of text.")
  in
  let n =
    Arg.(value & opt int 5000 & info [ "n" ] ~docv:"ROWS" ~doc:"Base table size.")
  in
  let rounds =
    Arg.(value & opt int 4 & info [ "rounds" ] ~docv:"K" ~doc:"Mutate+refresh rounds.")
  in
  let u =
    Arg.(
      value & opt float 0.1
      & info [ "u" ] ~docv:"U" ~doc:"Fraction of tuples mutated per round.")
  in
  Term.(const stats_cmd $ verbose_t $ trace_t $ json $ n $ rounds $ u)

let fig_t =
  let id =
    Arg.(required & opt (some int) None & info [ "id" ] ~docv:"N" ~doc:"Figure number (8 or 9).")
  in
  let n =
    Arg.(value & opt int 20000 & info [ "n" ] ~docv:"ROWS" ~doc:"Base table size.")
  in
  Term.(const fig_cmd $ id $ n)

let model_t =
  let n = Arg.(value & opt int 20000 & info [ "n" ] ~doc:"Base table size.") in
  let q =
    Arg.(required & opt (some float) None & info [ "q" ] ~doc:"Snapshot selectivity in [0,1].")
  in
  let u =
    Arg.(required & opt (some float) None & info [ "u" ] ~doc:"Update activity in [0,1].")
  in
  Term.(const model_cmd $ n $ q $ u)

let refresh_t =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON array instead of a table.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Refresh every registered snapshot (the default when no names are given).")
  in
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NAME" ~doc:"Snapshot names to refresh (default: all).")
  in
  let n =
    Arg.(value & opt int 5000 & info [ "n" ] ~docv:"ROWS" ~doc:"Base table size.")
  in
  let rounds =
    Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"K" ~doc:"Mutate+refresh rounds.")
  in
  let u =
    Arg.(
      value & opt float 0.05
      & info [ "u" ] ~docv:"U" ~doc:"Fraction of tuples mutated per round.")
  in
  let chunk_entries =
    Arg.(
      value
      & opt (some int) None
      & info [ "chunk-entries" ] ~docv:"N"
          ~doc:
            "Run refresh scans with the chunked concurrent protocol: a table \
             intention lock plus lock-coupled page-range locks covering \
             roughly $(docv) entries per chunk, with a WAL-tail catch-up \
             phase restoring transaction consistency.  Default: the \
             monolithic whole-scan table lock.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Decode refresh scans with $(docv) domains: workers pre-decode \
             page waves in parallel while the coordinator merges them in \
             strict address order, so the transmitted streams are \
             byte-identical to the sequential scan's.  Default: 1 \
             (sequential).")
  in
  let wal_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal-file" ] ~docv:"PATH"
          ~doc:
            "Write the base table's WAL to a file-backed segment at $(docv) \
             (length-prefixed, checksummed frames; commits group-committed 8 \
             per fsync), and after the run reopen it from disk and verify it \
             replays identically.")
  in
  let version_strategy =
    Arg.(
      value
      & opt (some string) None
      & info [ "version-strategy" ] ~docv:"STRAT"
          ~doc:
            "MVCC materialization strategy for the snapshots' epoch rings: \
             $(b,naive), $(b,copy-on-update) (alias $(b,cou)), or \
             $(b,zigzag).  Each committed refresh publishes an immutable \
             version; readers pin one and never block on a commit.")
  in
  let version_retain =
    Arg.(
      value
      & opt int 1
      & info [ "version-retain" ] ~docv:"K"
          ~doc:
            "Keep the last $(docv) committed refresh epochs readable \
             through pinned read transactions (default 1 = only the live \
             head, the pre-MVCC behaviour).")
  in
  Term.(
    const refresh_cmd $ verbose_t $ trace_t $ json $ all $ names $ n $ rounds $ u
    $ chunk_entries $ domains $ version_strategy $ version_retain $ wal_file)

let vacuum_t =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object instead of text.")
  in
  let n =
    Arg.(value & opt int 400 & info [ "n" ] ~docv:"ROWS" ~doc:"Base table size.")
  in
  let rounds =
    Arg.(
      value & opt int 6
      & info [ "rounds" ] ~docv:"K"
          ~doc:"Mutate+refresh rounds; each publishes a new snapshot epoch.")
  in
  let retain =
    Arg.(
      value & opt int 4
      & info [ "retain" ] ~docv:"K"
          ~doc:"RETAIN clause on the snapshot: epochs kept readable through AS OF.")
  in
  let older_than =
    Arg.(
      value
      & opt (some int) None
      & info [ "older-than" ] ~docv:"AGE"
          ~doc:
            "Also reclaim retained versions whose SnapTime is more than \
             $(docv) clock ticks old (the head and leased epochs always \
             survive).  Default: the RETAIN count alone decides.")
  in
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:"Report what vacuum would reclaim without touching anything.")
  in
  Term.(
    const vacuum_cmd $ verbose_t $ trace_t $ json $ n $ rounds $ retain $ older_than
    $ dry_run)

let faults_t =
  let n =
    Arg.(value & opt int 10000 & info [ "n" ] ~docv:"ROWS" ~doc:"Base table size.")
  in
  let rounds =
    Arg.(value & opt int 6 & info [ "rounds" ] ~docv:"K" ~doc:"Refresh rounds per fault plan.")
  in
  Term.(const faults_cmd $ n $ rounds)

let fleet_t =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object instead of text.")
  in
  let tenants =
    Arg.(value & opt int 8 & info [ "tenants" ] ~docv:"T" ~doc:"Tenant base tables.")
  in
  let snaps_per =
    Arg.(value & opt int 4 & info [ "snapshots" ] ~docv:"S" ~doc:"Snapshots per tenant.")
  in
  let ticks =
    Arg.(value & opt int 50 & info [ "ticks" ] ~docv:"K" ~doc:"Scheduler ticks to run.")
  in
  let seed = Arg.(value & opt int 0xF1EE7 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.") in
  Term.(const fleet_cmd $ verbose_t $ trace_t $ json $ tenants $ snaps_per $ ticks $ seed)

let cmds =
  [
    Cmd.v (Cmd.info "shell" ~doc:"Interactive SQL shell with snapshot support.") shell_t;
    Cmd.v (Cmd.info "run" ~doc:"Execute a SQL script file.") run_t;
    Cmd.v (Cmd.info "fig" ~doc:"Regenerate a figure from the paper's evaluation.") fig_t;
    Cmd.v (Cmd.info "model" ~doc:"Evaluate the analytical message-cost model.") model_t;
    Cmd.v
      (Cmd.info "refresh"
         ~doc:
           "Run a canned multi-snapshot workload and refresh through the \
            group path: differential siblings of one base share a single \
            scan.")
      refresh_t;
    Cmd.v
      (Cmd.info "vacuum"
         ~doc:
           "Run a retained-epoch workload, verify SQL time travel (AS OF) \
            against the MVCC read-transaction oracle, then reclaim expired \
            versions and truncate the WAL to the lease horizon.")
      vacuum_t;
    Cmd.v
      (Cmd.info "faults"
         ~doc:"Drive refreshes over fault-injecting links and report the retry tax.")
      faults_t;
    Cmd.v
      (Cmd.info "fleet"
         ~doc:
           "Drive a fleet of snapshots under staleness SLOs: bursty \
            multi-tenant updaters, deadline scheduling, cost-model method \
            choice, scan coalescing and backpressure.")
      fleet_t;
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Run a workload exercising refresh, the buffer pool, the WAL, locks \
            and links, then dump the engine's metrics registry.")
      stats_t;
  ]

let () =
  let info =
    Cmd.info "snapshotdb"
      ~doc:"A snapshot differential refresh engine (Lindsay et al., SIGMOD 1986)"
  in
  exit (Cmd.eval' (Cmd.group info cmds))
